"""CritPath tests: exact tiling, stat invisibility, wakeup edges, loop
gating, reports.

Contract: the per-unit-group critical sim-times sum EXACTLY to the
total simulated time on every §IV system matrix preset (tiling is the
attribution invariant, not an approximation), an attached CritPath
never changes a single stat, and the legacy/dense loops — which have no
per-unit gating — refuse it.
"""

import json

import pytest

from repro.errors import ConfigError, DeadlockError
from repro.experiments.runner import _program_for
from repro.obs import CritPath
from repro.obs.critpath import GROUPS, SCHEMA
from repro.soc import System, preset
from repro.trace.source import InstrSource
from repro.workloads import get_workload

#: the §IV system matrix: scalar baseline, big.LITTLE, DVE, big.VLITTLE
MATRIX = ("1b", "1b-4L", "1bDV", "1b-4VL")


def _run(system="1b-4VL", workload="saxpy", scale="tiny", **kw):
    cfg = preset(system)
    program = _program_for(cfg, get_workload(workload, scale))
    return System(cfg).run(program, **kw)


@pytest.mark.parametrize("system", MATRIX)
def test_critical_times_tile_total_exactly(system):
    cp = CritPath()
    result = _run(system=system, critpath=cp)
    assert cp.finalized and cp.tiles()
    assert cp.total_ps == result.stats["time_ps"]
    rep = cp.report()
    assert rep["attributed_ps"] == rep["total_ps"] == result.stats["time_ps"]
    assert sum(g["crit_ps"] for g in rep["groups"]) == rep["total_ps"]


@pytest.mark.parametrize("system", MATRIX)
def test_stats_identical_with_and_without_critpath(system):
    """Determinism guard: attribution must be invisible to the sim."""
    base = _run(system=system)
    probed = _run(system=system, critpath=CritPath())
    assert probed.stats == base.stats
    assert probed.cycles == base.cycles


def test_groups_are_known_and_plausible():
    cp = CritPath()
    _run(critpath=cp)
    rows = cp.group_rows()
    assert {r["group"] for r in rows} <= set(GROUPS)
    groups = {r["group"]: r for r in rows}
    # a vector workload on 1b-4VL is gated by big, vcu, and mem at least
    assert groups["big"]["crit_ps"] > 0
    assert groups["vcu"]["crit_ps"] > 0
    assert groups["mem"]["crit_ps"] > 0
    assert "stalled" not in groups  # run completed
    shares = sum(r["share"] for r in rows)
    assert shares == pytest.approx(1.0)


def test_wakeup_edges_are_counted_and_resolved():
    cp = CritPath()
    _run(critpath=cp)
    rows = cp.wakeup_rows()
    assert rows and all(r["count"] > 0 for r in rows)
    names = {r["waker"] for r in rows} | {r["wakee"] for r in rows}
    # every name resolves: a unit from the run or the scheduler pseudo-node
    assert not any(n.startswith("unit") for n in names)
    assert any(r["waker"] == "big0" and r["wakee"] == "vcu" for r in rows)
    rep = cp.report()
    assert rep["wakeup_edges"] == sum(r["count"] for r in rows)


def test_critpath_requires_event_loop():
    with pytest.raises(ConfigError, match="event loop"):
        _run(critpath=CritPath(), skip=False)
    with pytest.raises(ConfigError, match="event loop"):
        _run(critpath=CritPath(), loop="legacy")


def test_report_json_roundtrip(tmp_path):
    cp = CritPath()
    _run(critpath=cp)
    out = tmp_path / "critpath.json"
    doc = cp.write_json(out, meta={"workload": "saxpy"})
    loaded = json.loads(out.read_text())
    assert loaded == json.loads(json.dumps(doc))  # JSON-safe
    assert loaded["schema"] == SCHEMA
    assert loaded["tiles"] is True
    assert loaded["meta"]["workload"] == "saxpy"


def test_format_table_reports_exact_tiling():
    cp = CritPath()
    _run(critpath=cp)
    table = cp.format_table(top=3)
    assert "tiles exactly" in table and "wakeups" in table


class _WedgedSource(InstrSource):
    __slots__ = ()
    pure_peek = True

    def peek(self):
        return None

    def pop(self):  # pragma: no cover
        raise AssertionError

    def done(self):
        return False


def test_deadlocked_run_tiles_via_stalled_group():
    sys_ = System(preset("1b"))
    sys_.bigs[0].set_source(_WedgedSource())
    cp = CritPath()
    with pytest.raises(DeadlockError) as ei:
        sys_.run(critpath=cp)
    assert cp.finalized and cp.tiles()
    assert cp.total_ps == ei.value.cycle
    stalled = {r["group"]: r["crit_ps"] for r in cp.group_rows()}["stalled"]
    assert stalled > 0  # the wedged tail is charged to the stall
