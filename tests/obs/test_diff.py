"""Cross-run stat diffing and the regression gate.

The acceptance contract (docs/observability.md):

* identical stats diff to zero deltas and pass the gate;
* exact-class deltas always fail the gate; timing-class deltas fail only
  beyond the relative tolerance; meta-class deltas never gate;
* a non-``obs.*`` key present in only one dump fails the gate, a missing
  ``obs.*`` key does not (runs may be observed at different depths);
* ``dump_result`` / ``load_dump`` round-trip through files.
"""

import json

import pytest

from repro.obs.diff import (
    EXACT,
    META,
    TIMING,
    classify,
    diff_files,
    diff_stats,
    dump_result,
    load_dump,
)

BASE = {
    "time_ps": 1_000_000,
    "cycles_1ghz": 1000,
    "sim.ticks_big": 500,
    "big0.instrs": 400,
    "big0.stall.raw_mem": 120,
    "vlittle.uops": 64,
    "vlittle.lane_stall.simd": 30,
    "l2.misses": 12,
    "obs.cycles.vcu.busy": 77,
    "obs.metric.vmu.coalesce_elems.count": 9,
    "obs.trace.events": 5000,
    "obs.pipeview.dropped": 0,
    "obs.sampler.samples": 4,
}


# ---------------------------------------------------------------- classify


@pytest.mark.parametrize("key,kind", [
    ("big0.instrs", EXACT),
    ("l2.misses", EXACT),
    ("vlittle.uops", EXACT),
    ("obs.metric.vmu.coalesce_elems.count", EXACT),
    ("time_ps", TIMING),
    ("cycles_1ghz", TIMING),
    ("dram_busy_cycles", TIMING),
    # loop-iteration accounting: the quiescence-skipping scheduler changes
    # the executed/skipped split without changing the simulated outcome
    ("sim.ticks_little", META),
    ("sim.ticks_skipped_big", META),
    ("obs.cycles.vcu.busy", TIMING),
    ("big0.stall.raw_mem", TIMING),
    ("vlittle.lane_stall.simd", TIMING),
    ("obs.metric.l2.miss_latency.p50", TIMING),
    ("obs.trace.events", META),
    ("obs.pipeview.dropped", META),
    ("obs.sampler.samples", META),
])
def test_classify(key, kind):
    assert classify(key) == kind


# -------------------------------------------------------------- diff_stats


def test_identical_stats_no_deltas():
    r = diff_stats(dict(BASE), dict(BASE))
    assert r.identical()
    assert r.ok()
    assert r.counts() == {EXACT: 0, TIMING: 0, META: 0}
    assert "identical: 0 deltas" in r.format_table()


def test_exact_delta_always_gates():
    b = dict(BASE, **{"big0.instrs": 401})
    r = diff_stats(BASE, b)
    assert not r.ok(rel_tol=0.5)  # no tolerance forgives an exact delta
    (d,) = r.regressions(rel_tol=0.5)
    assert d.key == "big0.instrs" and d.kind == EXACT


def test_timing_delta_respects_tolerance():
    b = dict(BASE, cycles_1ghz=1010, time_ps=1_010_000)  # +1%
    r = diff_stats(BASE, b)
    assert not r.ok(rel_tol=0.0)
    assert r.ok(rel_tol=0.02)
    assert not r.regressions(rel_tol=0.02)
    assert r.counts()[TIMING] == 2


def test_meta_delta_never_gates():
    b = dict(BASE, **{"obs.trace.events": 9999, "obs.sampler.samples": 40})
    r = diff_stats(BASE, b)
    assert not r.identical()
    assert r.ok(rel_tol=0.0)
    assert r.counts() == {EXACT: 0, TIMING: 0, META: 2}


def test_missing_key_gating():
    a = dict(BASE)
    b = dict(BASE)
    del b["l2.misses"]  # structural key vanished: gate
    r = diff_stats(a, b)
    assert r.only_a == ["l2.misses"] and not r.ok()
    b = dict(BASE)
    del b["obs.pipeview.dropped"]  # shallower observation: fine
    del b["obs.cycles.vcu.busy"]
    r = diff_stats(a, b)
    assert len(r.only_a) == 2 and r.ok()


def test_rel_property():
    b = dict(BASE, cycles_1ghz=1500)
    (d,) = [x for x in diff_stats(BASE, b).deltas if x.key == "cycles_1ghz"]
    assert d.rel == pytest.approx(500 / 1500)


def test_format_table_marks_gated_deltas():
    b = dict(BASE, **{"big0.instrs": 999, "obs.trace.events": 1})
    text = diff_stats(BASE, b).format_table()
    assert "<- gate" in text
    assert "1 exact" in text and "1 meta" in text


# ------------------------------------------------------------- file layer


class _FakeResult:
    name = "vvadd"
    system = "1b-4VL"
    cycles = 1000
    stats = BASE


def test_dump_and_load_roundtrip(tmp_path):
    doc = dump_result(_FakeResult(), extra={"workload": "vvadd"})
    assert doc["schema"] == "bigvlittle-run-v1"
    p = tmp_path / "run.json"
    p.write_text(json.dumps(doc))
    name, stats = load_dump(str(p))
    assert stats == BASE
    assert name == "1b-4VL:vvadd"


def test_load_dump_accepts_bare_stats(tmp_path):
    p = tmp_path / "flat.json"
    p.write_text(json.dumps(BASE))
    _, stats = load_dump(str(p))
    assert stats == BASE


def test_load_dump_rejects_garbage(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        load_dump(str(p))
    p.write_text('{"stats": {}}')
    with pytest.raises(ValueError):
        load_dump(str(p))


def test_diff_files(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(dump_result(_FakeResult())))
    b.write_text(json.dumps(dump_result(_FakeResult())))
    assert diff_files(str(a), str(b)).identical()
    doc = dump_result(_FakeResult())
    doc["stats"] = dict(BASE, **{"big0.instrs": 1})
    b.write_text(json.dumps(doc))
    r = diff_files(str(a), str(b))
    assert not r.ok() and len(r.deltas) == 1
