"""Interval time-series sampling: series consistency + exports.

The acceptance contract (docs/observability.md):

* a sampled run yields at least one sample, with every column the same
  length and per-interval deltas that sum back to the run totals;
* CSV and JSON exports round-trip mechanically;
* the sampler's series land as Chrome ``counter`` events on a dedicated
  ``sampler`` process;
* attaching a sampler never changes any pre-existing (non-``obs.*``) stat.
"""

import csv
import json

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import _program_for
from repro.obs import IntervalSampler, Observation
from repro.soc import System, preset
from repro.stats import STALL_NAMES
from repro.workloads import get_workload


def _run(system_name, workload, obs=None):
    cfg = preset(system_name)
    program = _program_for(cfg, get_workload(workload, "tiny"))
    return System(cfg).run(program, obs=obs)


@pytest.fixture(scope="module")
def sampled_run():
    obs = Observation(sampler=IntervalSampler(interval=200))
    result = _run("1b-4VL", "saxpy", obs=obs)
    return obs, result


def test_interval_must_be_positive():
    with pytest.raises(ConfigError):
        IntervalSampler(interval=0)


def test_samples_and_column_consistency(sampled_run):
    obs, result = sampled_run
    s = obs.sampler
    assert s.samples > 1  # interval 200 on a multi-thousand-cycle run
    assert result["obs.sampler.samples"] == s.samples
    assert result["obs.sampler.interval_cycles"] == 200
    for col in s.columns:
        assert len(s.series(col)) == s.samples, col
    # sampled cycle points are strictly increasing
    cycles = s.series("cycle")
    assert all(b > a for a, b in zip(cycles, cycles[1:]))


def test_deltas_sum_to_run_totals(sampled_run):
    obs, result = sampled_run
    s = obs.sampler
    # the final flush closes the last partial interval, so the instruction
    # deltas tile the whole run exactly
    assert sum(s.series("d_instrs_big")) == result["big0.instrs"]
    total_stalls = sum(sum(s.series(f"d_stall_{n}")) for n in STALL_NAMES)
    assert total_stalls == sum(
        v for k, v in result.stats.items() if k.startswith("obs.cycles."))


def test_rows_match_series(sampled_run):
    obs, _ = sampled_run
    s = obs.sampler
    rows = s.rows()
    assert len(rows) == s.samples
    assert rows[0]["cycle"] == s.series("cycle")[0]


def test_csv_roundtrip(sampled_run, tmp_path):
    obs, _ = sampled_run
    s = obs.sampler
    path = tmp_path / "timeline.csv"
    assert s.to_csv(str(path)) == s.samples
    with open(path, newline="", encoding="utf-8") as f:
        got = list(csv.DictReader(f))
    assert len(got) == s.samples
    assert set(got[0]) == set(s.columns)
    assert [int(r["cycle"]) for r in got] == s.series("cycle")


def test_json_roundtrip(sampled_run, tmp_path):
    obs, _ = sampled_run
    s = obs.sampler
    path = tmp_path / "timeline.json"
    assert s.to_json(str(path)) == s.samples
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    assert doc["schema"] == "bigvlittle-timeline-v1"
    assert doc["samples"] == s.samples
    assert doc["columns"] == s.columns
    assert doc["series"]["d_cycles"] == s.series("d_cycles")


def test_counter_tracks_in_chrome_trace(sampled_run):
    obs, _ = sampled_run
    doc = obs.chrome_trace()
    procs = {e["pid"]: e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    sampler_pids = {pid for pid, name in procs.items() if name == "sampler"}
    assert sampler_pids
    counters = {e["name"] for e in doc["traceEvents"]
                if e["ph"] == "C" and e["pid"] in sampler_pids}
    for want in ("ipc_big", "uopq", "l2_mpki", "dram_gbps"):
        assert want in counters, want


def test_sampler_off_stats_bit_identical(sampled_run):
    _, with_sampler = sampled_run
    without = _run("1b-4VL", "saxpy")
    shared = {k: v for k, v in with_sampler.stats.items()
              if not k.startswith("obs.")}
    assert shared == without.stats


def test_sampler_is_deterministic():
    a = Observation(sampler=IntervalSampler(interval=300))
    b = Observation(sampler=IntervalSampler(interval=300))
    _run("1b-4VL", "vvadd", obs=a)
    _run("1b-4VL", "vvadd", obs=b)
    assert a.sampler.as_dict() == b.sampler.as_dict()


def test_dve_occupancy_columns():
    obs = Observation(sampler=IntervalSampler(interval=100))
    _run("1bDV", "saxpy", obs=obs)
    s = obs.sampler
    assert s.samples > 0
    # on a 1bDV system the queue columns track the DVE's cmdq / lines
    assert max(s.series("uopq") + s.series("dataq") + [0]) >= 0
    assert sum(s.series("d_instrs_big")) > 0


# ------------------------------------------------------------ energy columns


from repro.obs.sampler import ENERGY_COLUMNS  # noqa: E402


def test_energy_columns_opt_in(sampled_run):
    obs, _ = sampled_run
    for col in ENERGY_COLUMNS:
        assert col not in obs.sampler.columns
    withe = Observation(sampler=IntervalSampler(interval=200,
                                                energy=("b1", "l1")))
    _run("1b-4VL", "saxpy", obs=withe)
    for col in ENERGY_COLUMNS:
        assert col in withe.sampler.columns
    assert withe.sampler.as_dict()["energy_levels"] == ["b1", "l1"]


@pytest.mark.parametrize("system_name", ["1b-4VL", "1bDV", "1bIV-4L"])
def test_cumulative_energy_reconciles_bit_exact(system_name):
    from repro.power import energy_j, system_power_w

    obs = Observation(sampler=IntervalSampler(interval=200,
                                              energy=("b2", "l1")))
    result = _run(system_name, "saxpy", obs=obs)
    cfg = preset(system_name)
    total = energy_j(result["time_ps"],
                     system_power_w(system_name, "b2", "l1",
                                    n_little=cfg.n_little or 4))
    assert obs.sampler.series("cum_energy_j")[-1] == total


def test_energy_level_normalization():
    assert IntervalSampler(energy=True).energy == ("b1", "l1")
    assert IntervalSampler(energy={"big": "b3"}).energy == ("b3", "l1")
    assert IntervalSampler(energy=["b0", "l2"]).energy == ("b0", "l2")
    with pytest.raises(ConfigError):
        IntervalSampler(energy=("b1",))


def test_energy_series_deterministic_under_skip():
    cfg = preset("1b-4VL")
    program = _program_for(cfg, get_workload("switch_thrash", "tiny"))
    docs = []
    for skip in (True, False):
        obs = Observation(sampler=IntervalSampler(interval=100,
                                                  energy=("b1", "l1")))
        System(preset("1b-4VL")).run(program, obs=obs, skip=skip)
        docs.append(obs.sampler.as_dict())
    assert docs[0] == docs[1]


def test_final_partial_interval_uses_actual_width():
    # one interval longer than the whole run: the single flush sample's
    # rates must be normalized by the true (fractional-cycle) run length,
    # not the floored whole-interval count
    obs = Observation(sampler=IntervalSampler(interval=10_000_000))
    result = _run("1b-4VL", "saxpy", obs=obs)
    s = obs.sampler
    assert s.samples == 1
    width = result["time_ps"] / 1000.0
    assert s.series("d_instrs_big")[0] == result["big0.instrs"]
    assert s.series("ipc_big")[0] == round(result["big0.instrs"] / width, 6)
    lines = (result["dram.reads"] + result["dram.writes"]
             if "dram.reads" in result.stats else
             s.series("d_dram_reads")[0] + s.series("d_dram_writes")[0])
    assert s.series("dram_gbps")[0] == round(64.0 * lines / width, 6)
