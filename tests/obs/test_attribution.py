"""Observation facade: unit registration, validation, stats folding."""

import pytest

from repro.errors import ConfigError
from repro.obs import Observation
from repro.obs.hooks import ObsValidationError
from repro.stats import STALL_NAMES, Stall


def test_unit_registration():
    obs = Observation()
    u = obs.unit("big0", "big", process="cores")
    assert obs.units["big0"] is u
    with pytest.raises(ConfigError):
        obs.unit("big0", "big")  # duplicate name
    with pytest.raises(ConfigError):
        obs.unit("x", "gpu")  # unknown clock domain


def test_validate_accepts_exact_sum_and_zero():
    obs = Observation()
    a = obs.unit("a", "little")
    b = obs.unit("b", "little")  # never ticks (bypassed engine)
    for _ in range(10):
        a.cycle(Stall.BUSY)
    assert obs.validate({"little": 10})
    assert b.total() == 0


def test_validate_rejects_partial_accounting():
    obs = Observation()
    u = obs.unit("a", "big")
    u.cycle(Stall.BUSY, 7)
    with pytest.raises(ObsValidationError):
        obs.validate({"big": 10})


def test_stats_dict_shape():
    obs = Observation()
    u = obs.unit("a", "mem")
    u.cycle(Stall.BUSY, 3)
    u.cycle(Stall.MISC, 2)
    obs.metrics.counter("reqs").add(5)
    st = obs.stats_dict()
    for cat in STALL_NAMES:
        assert f"obs.cycles.a.{cat}" in st
    assert st["obs.cycles.a.busy"] == 3
    assert st["obs.cycles.a.misc"] == 2
    assert st["obs.metric.reqs"] == 5
    assert st["obs.trace.events"] == 0
    assert all(k.startswith("obs.") for k in st)
    assert all(isinstance(v, int) for v in st.values())


def test_profile_rows_skip_idle_units():
    obs = Observation()
    obs.unit("idle", "big")
    busy = obs.unit("busy", "big")
    busy.cycle(Stall.BUSY, 4)
    busy.cycle(Stall.RAW_MEM, 6)
    rows = obs.profile_rows()
    assert [r["unit"] for r in rows] == ["busy"]
    assert rows[0]["busy_frac"] == 0.4
    table = obs.profile_table()
    assert "busy" in table and "idle" not in table
