"""Tracer ring buffer and Chrome trace_event export."""

import json

import pytest

from repro.obs import Tracer

VALID_PHASES = {"B", "E", "i", "X", "C", "M"}


def test_track_ids_stable_and_distinct():
    t = Tracer()
    a = t.track("big0", process="cores")
    b = t.track("vcu", process="vector")
    assert a != b
    assert t.track("big0", process="cores") == a  # idempotent


def test_events_recorded_in_order():
    t = Tracer()
    tr = t.track("u")
    t.begin(tr, "work", 100)
    t.end(tr, "work", 250)
    t.instant(tr, "blip", 300, {"k": 1})
    t.complete(tr, "span", 400, 50)
    t.counter(tr, "depth", 500, 7)
    assert len(t) == 5
    assert t.dropped == 0


def test_ring_buffer_bounds_and_counts_drops():
    t = Tracer(max_events=10)
    tr = t.track("u")
    for i in range(25):
        t.instant(tr, f"e{i}", i * 1000)
    assert len(t) == 10
    assert t.dropped == 15
    doc = t.chrome_trace()
    names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "i"]
    assert names == [f"e{i}" for i in range(15, 25)]  # oldest dropped
    assert doc["otherData"]["dropped_events"] == 15


def test_retain_ends_keeps_prologue_and_steady_state():
    t = Tracer(max_events=10, retain="ends")
    tr = t.track("u")
    for i in range(25):
        t.instant(tr, f"e{i}", i * 1000)
    assert len(t) == 10
    assert t.dropped == 15
    doc = t.chrome_trace()
    names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "i"]
    # first half of the budget frozen, ring recycles only the second half
    assert names == [f"e{i}" for i in range(5)] + \
                    [f"e{i}" for i in range(20, 25)]
    assert doc["otherData"]["retain"] == "ends"
    assert doc["otherData"]["dropped_events"] == 15


def test_retain_ends_no_drops_below_budget():
    t = Tracer(max_events=10, retain="ends")
    tr = t.track("u")
    for i in range(10):
        t.instant(tr, f"e{i}", i * 1000)
    assert len(t) == 10
    assert t.dropped == 0
    doc = t.chrome_trace()
    names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "i"]
    assert names == [f"e{i}" for i in range(10)]  # nothing lost, in order


def test_retain_rejects_unknown_policy():
    with pytest.raises(ValueError):
        Tracer(retain="middle")


def test_observation_plumbs_retain_to_tracer():
    from repro.obs import Observation

    obs = Observation(max_events=10, retain="ends")
    assert obs.tracer.retain == "ends"
    assert obs.tracer.max_events == 10


def test_chrome_trace_schema():
    t = Tracer()
    tr = t.track("big0", process="cores")
    t.begin(tr, "commit", 1000)
    t.end(tr, "commit", 3000)
    t.instant(tr, "mispredict", 5000)
    t.complete(tr, "rotate", 7000, 2000, {"seq": 3})
    t.counter(tr, "occ", 9000, 4)
    doc = t.chrome_trace()
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {e["name"] for e in meta} == {"process_name", "thread_name"}
    for e in doc["traceEvents"]:
        assert e["ph"] in VALID_PHASES
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        if e["ph"] != "M":
            assert isinstance(e["ts"], int) and e["ts"] >= 0
        if e["ph"] == "X":
            assert e["dur"] >= 1
        if e["ph"] == "i":
            assert e["s"] == "t"
    # timestamps are ps // 1000: 1 viewer microsecond == 1 sim nanosecond
    inst = next(e for e in doc["traceEvents"] if e["ph"] == "i")
    assert inst["ts"] == 5
    # must survive a JSON round-trip (what write_json emits)
    assert json.loads(json.dumps(doc)) == doc


def test_write_json(tmp_path):
    t = Tracer()
    tr = t.track("u")
    t.instant(tr, "e", 0)
    path = tmp_path / "trace.json"
    n = t.write_json(path)
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == n
    assert n >= 1
