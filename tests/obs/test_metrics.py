"""Metrics registry: counters, gauges, fixed-bucket histograms."""

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry


def test_counter():
    m = MetricsRegistry()
    c = m.counter("reqs")
    c.add()
    c.add(4)
    assert c.value == 5
    assert m.counter("reqs") is c  # same name -> same instrument


def test_gauge():
    m = MetricsRegistry()
    g = m.gauge("occ")
    for v in (3, 9, 1):
        g.set(v)
    st = g.as_stats("occ")
    assert st == {"occ.last": 1, "occ.min": 1, "occ.max": 9, "occ.samples": 3}


def test_histogram_buckets():
    m = MetricsRegistry()
    h = m.histogram("lat", (10, 100, 1000))
    for v in (5, 10, 11, 99, 100, 5000):
        h.observe(v)
    st = h.as_stats("lat")
    # bucket le_b counts values in (previous_bound, b]; inf is overflow
    assert st["lat.le_10"] == 2      # 5, 10
    assert st["lat.le_100"] == 3     # 11, 99, 100
    assert st["lat.le_1000"] == 0
    assert st["lat.inf"] == 1        # 5000
    assert st["lat.count"] == 6
    assert st["lat.sum"] == 5225


def test_kind_mismatch_rejected():
    m = MetricsRegistry()
    m.counter("x")
    with pytest.raises(ConfigError):
        m.gauge("x")
    m.histogram("h", (1, 2))
    with pytest.raises(ConfigError):
        m.histogram("h", (1, 2, 3))  # same name, different buckets


def test_as_stats_deterministic():
    def build():
        m = MetricsRegistry()
        m.counter("b").add(2)
        m.counter("a").add(1)
        m.gauge("g").set(7)
        return m

    st = build().as_stats()
    # identical registries fold identically, regardless of creation order,
    # and metrics appear sorted by name
    assert list(st) == list(build().as_stats())
    assert st == build().as_stats()
    assert list(st)[:2] == ["obs.metric.a", "obs.metric.b"]
    assert all(k.startswith("obs.metric.") for k in st)
    assert all(isinstance(v, int) for v in st.values())
