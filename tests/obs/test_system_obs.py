"""End-to-end observability: a real simulated run with obs attached.

The acceptance contract (docs/observability.md):

* per-unit cycle attribution sums to that unit's domain tick count;
* the exported Chrome trace is schema-valid and names distinct tracks for
  the big core, at least one little core, the VCU, VXU, VMU, and DRAM;
* attaching an Observation never changes any pre-existing stat.
"""

import json

import pytest

from repro.experiments.runner import _program_for
from repro.obs import Observation
from repro.soc import System, preset
from repro.stats import STALL_NAMES
from repro.workloads import get_workload


def _run(system_name, workload, obs=None):
    cfg = preset(system_name)
    program = _program_for(cfg, get_workload(workload, "tiny"))
    return System(cfg).run(program, obs=obs)


@pytest.fixture(scope="module")
def observed_run():
    obs = Observation()
    result = _run("1b-4VL", "saxpy", obs=obs)
    return obs, result


def test_attribution_sums_to_domain_ticks(observed_run):
    obs, result = observed_run
    # attribution covers every domain tick, executed or fast-forwarded by
    # the quiescence-skipping scheduler (skipped ticks are compensated)
    ticks = {d: result[f"sim.ticks_{d}"] + result[f"sim.ticks_skipped_{d}"]
             for d in ("big", "little", "mem")}
    assert ticks["little"] > 0
    for u in obs.units.values():
        assert u.total() in (0, ticks[u.domain]), u.name
    # the VCU genuinely ran on this workload
    assert obs.units["vcu"].total() == ticks["little"]


def test_obs_stats_folded_into_result(observed_run):
    obs, result = observed_run
    for cat in STALL_NAMES:
        assert f"obs.cycles.vcu.{cat}" in result.stats
    assert result["obs.trace.events"] > 0
    assert result["obs.trace.dropped"] == 0


def test_chrome_trace_has_required_tracks(observed_run):
    obs, _ = observed_run
    doc = obs.chrome_trace()
    events = doc["traceEvents"]
    assert events, "trace must be non-empty for a vector workload"
    tracks = {e["args"]["name"] for e in events
              if e["ph"] == "M" and e["name"] == "thread_name"}
    for want in ("big0", "lit0", "vcu", "vxu", "vmu", "dram"):
        assert want in tracks, want
    for e in events:
        assert e["ph"] in {"B", "E", "i", "X", "C", "M"}
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        if e["ph"] != "M":
            assert isinstance(e["ts"], int) and e["ts"] >= 0
    json.dumps(doc)  # JSON-serializable end to end


def test_obs_off_is_bit_identical(observed_run):
    obs, with_obs = observed_run
    without = _run("1b-4VL", "saxpy")
    shared = {k: v for k, v in with_obs.stats.items()
              if not k.startswith("obs.")}
    assert shared == without.stats
    extra = set(with_obs.stats) - set(without.stats)
    assert extra and all(k.startswith("obs.") for k in extra)


def test_task_parallel_run_validates():
    # 1b-4VL running a task-parallel program bypasses the engine: its units
    # must report zero and validation must still pass
    obs = Observation()
    result = _run("1b-4L", "bfs", obs=obs)
    assert result["obs.trace.events"] >= 0
    assert obs.units["big0"].total() == (
        result["sim.ticks_big"] + result["sim.ticks_skipped_big"])


def test_scalar_system_validates():
    obs = Observation()
    result = _run("1b", "vvadd", obs=obs)
    assert obs.units["big0"].total() == (
        result["sim.ticks_big"] + result["sim.ticks_skipped_big"])
    assert obs.units["l2"].total() == (
        result["sim.ticks_mem"] + result["sim.ticks_skipped_mem"])
