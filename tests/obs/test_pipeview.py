"""Instruction-grain pipeline tracking: unit behavior + export schemas.

The acceptance contract (docs/observability.md):

* records pass through named stages with monotonically ordered windows and
  land in a bounded retired ring whose overflow is *counted*, not silent;
* ``kanata_lines()`` is a schema-valid Kanata 0004 log (every record is
  opened, staged, ended, and retired; dependency edges reference already-
  opened records);
* ``o3_lines()`` is gem5-``O3PipeView``-parseable with non-decreasing
  per-record timestamps;
* attaching a PipeView never changes any pre-existing (non-``obs.*``) stat.
"""

import re

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import _program_for
from repro.obs import Observation, PipeView
from repro.obs.pipeview import KANATA_HEADER, STAGES
from repro.soc import System, preset
from repro.workloads import get_workload


def _run(system_name, workload, obs=None):
    cfg = preset(system_name)
    program = _program_for(cfg, get_workload(workload, "tiny"))
    return System(cfg).run(program, obs=obs)


# ------------------------------------------------------------------- helpers


def parse_kanata(lines):
    """Strict structural parse; returns (opened ids, retired ids)."""
    assert lines[0] == KANATA_HEADER
    assert lines[1].startswith("C=\t")
    int(lines[1].split("\t")[1])
    live = {}  # id -> current stage name (None between stages)
    opened, retired = set(), set()
    for ln in lines[2:]:
        parts = ln.split("\t")
        cmd = parts[0]
        if cmd == "C":
            assert int(parts[1]) > 0
        elif cmd == "I":
            fid = int(parts[1])
            assert fid not in opened, "record opened twice"
            opened.add(fid)
            live[fid] = None
        elif cmd == "L":
            fid, row, text = int(parts[1]), parts[2], parts[3]
            assert fid in live and row in ("0", "1") and text
        elif cmd == "S":
            fid, lane, stage = int(parts[1]), parts[2], parts[3]
            assert fid in live and lane == "0"
            assert stage in STAGES, f"unknown stage mnemonic {stage!r}"
            live[fid] = stage
        elif cmd == "E":
            fid, lane, stage = int(parts[1]), parts[2], parts[3]
            assert live.get(fid) == stage, "E must close the open stage"
            live[fid] = None
        elif cmd == "W":
            fid, dep = int(parts[1]), int(parts[2])
            assert fid in live and dep in opened
        elif cmd == "R":
            fid = int(parts[1])
            assert live.get(fid, "?") is None, "retire with a stage open"
            del live[fid]
            retired.add(fid)
        else:
            raise AssertionError(f"unknown Kanata command {cmd!r}")
    assert not live, "every opened record must retire"
    return opened, retired


_O3_FETCH = re.compile(r"^O3PipeView:fetch:\d+:0x[0-9a-f]{8}:0:\d+:.+$")
_O3_STAGE = re.compile(r"^O3PipeView:(decode|rename|dispatch|issue|complete):(\d+)$")
_O3_RETIRE = re.compile(r"^O3PipeView:retire:(\d+):store:0$")


def parse_o3(lines):
    """Validate the 7-line-per-record gem5 O3PipeView structure."""
    assert len(lines) % 7 == 0 and lines
    n = 0
    for i in range(0, len(lines), 7):
        m = _O3_FETCH.match(lines[i])
        assert m, lines[i]
        last = int(lines[i].split(":")[2])
        for j in range(1, 6):
            m = _O3_STAGE.match(lines[i + j])
            assert m, lines[i + j]
            ts = int(m.group(2))
            assert ts >= last, "stage timestamps must be non-decreasing"
            last = ts
        m = _O3_RETIRE.match(lines[i + 6])
        assert m and int(m.group(1)) >= last
        n += 1
    return n


# ---------------------------------------------------------------- unit tests


def test_window_must_be_positive():
    with pytest.raises(ConfigError):
        PipeView(window=0)


def test_record_lifecycle_and_stats():
    pv = PipeView(window=10)
    r = pv.begin("u0", "add", 1000, stage="F", pc=0x40)
    pv.stage(r, "Is", 2000)
    pv.stage(r, "Cp", 4000)
    assert r.start == 1000 and r.end is None
    pv.retire(r, 5000)
    assert r.end == 5000
    d = pv.stats_dict()
    assert d["obs.pipeview.records"] == 1
    assert d["obs.pipeview.retired"] == 1
    assert d["obs.pipeview.dropped"] == 0
    assert d["obs.pipeview.window"] == 10


def test_bounded_window_counts_drops():
    pv = PipeView(window=4)
    for i in range(10):
        pv.retire(pv.begin("u0", f"i{i}", i * 1000), i * 1000 + 500)
    assert pv.retired == 10
    assert pv.dropped == 6
    assert len(pv) == 4
    # exports only carry the surviving window
    opened, retired = parse_kanata(pv.kanata_lines())
    assert len(opened) == len(retired) == 4
    assert parse_o3(pv.o3_lines()) == 4


def test_retain_ends_keeps_first_and_last_retirees():
    pv = PipeView(window=4, retain="ends")
    for i in range(10):
        pv.retire(pv.begin("u0", f"i{i}", i * 1000), i * 1000 + 500)
    assert pv.retired == 10
    assert pv.dropped == 6
    assert len(pv) == 4
    labels = [r.label for r in pv._export_records()]
    # first half of the window frozen, ring recycles only the second half
    assert labels == ["i0", "i1", "i8", "i9"]
    opened, retired = parse_kanata(pv.kanata_lines())
    assert len(opened) == len(retired) == 4
    assert parse_o3(pv.o3_lines()) == 4


def test_retain_rejects_unknown_policy():
    with pytest.raises(ConfigError):
        PipeView(retain="middle")


def test_seq_record_links_and_cleanup():
    pv = PipeView()
    parent = pv.begin("big0", "VADD", 0, seq=7)
    assert pv.seq_record(7) is parent
    child = pv.begin("vcu", "exec s7.c0", 1000, parent=pv.seq_record(7))
    assert child.parent is parent
    pv.retire(parent, 2000)
    assert pv.seq_record(7) is None  # map bounded: cleaned at retire
    pv.retire(child, 3000)
    lines = pv.kanata_lines()
    assert any(ln.startswith("W\t") for ln in lines), "dependency edge exported"
    parse_kanata(lines)


def test_labels_cannot_break_the_formats():
    pv = PipeView()
    r = pv.begin("u0", "weird\tlabel:with\nall", 0)
    pv.retire(r, 1000)
    parse_kanata(pv.kanata_lines())
    parse_o3(pv.o3_lines())


def test_live_records_still_export():
    pv = PipeView()
    pv.begin("u0", "inflight", 500, stage="F")
    opened, retired = parse_kanata(pv.kanata_lines())
    assert len(opened) == 1 and len(retired) == 1  # closed at last stamp
    assert parse_o3(pv.o3_lines()) == 1
    assert pv.stats_dict()["obs.pipeview.records"] == 1
    assert pv.stats_dict()["obs.pipeview.retired"] == 0


# ---------------------------------------------------------------- end to end


@pytest.fixture(scope="module")
def pipeview_run():
    obs = Observation(pipeview=PipeView())
    result = _run("1b-4VL", "saxpy", obs=obs)
    return obs, result


def test_vlittle_run_tracks_all_units(pipeview_run):
    obs, result = pipeview_run
    pv = obs.pipeview
    assert pv.retired > 0 and pv.dropped == 0
    units = {r.unit for r in pv._done}
    # big core instructions, VCU µops, and VMU line requests all appear
    assert "big0" in units and "vcu" in units and "vmu" in units
    assert result["obs.pipeview.retired"] == pv.retired


def test_vlittle_kanata_schema(pipeview_run):
    obs, _ = pipeview_run
    opened, retired = parse_kanata(obs.pipeview.kanata_lines())
    assert len(opened) == len(obs.pipeview._done) + len(obs.pipeview._live)


def test_vlittle_o3_schema(pipeview_run):
    obs, _ = pipeview_run
    assert parse_o3(obs.pipeview.o3_lines()) > 0


def test_uops_carry_dependency_edges(pipeview_run):
    obs, _ = pipeview_run
    linked = [r for r in obs.pipeview._done
              if r.unit == "vcu" and r.parent is not None]
    assert linked, "VCU µops must link back to their dispatching instruction"


def test_pipeview_off_stats_bit_identical(pipeview_run):
    _, with_pv = pipeview_run
    without = _run("1b-4VL", "saxpy")
    shared = {k: v for k, v in with_pv.stats.items()
              if not k.startswith("obs.")}
    assert shared == without.stats


def test_dve_and_vxu_records():
    obs = Observation(pipeview=PipeView())
    _run("1bDV", "saxpy", obs=obs)
    assert any(r.unit == "dve" for r in obs.pipeview._done)
    obs2 = Observation(pipeview=PipeView())
    _run("1b-4VL", "lavamd", obs=obs2)  # reduction exercises the VXU ring
    assert any(r.unit == "vxu" for r in obs2.pipeview._done)
    parse_kanata(obs2.pipeview.kanata_lines())


def test_little_scalar_records():
    obs = Observation(pipeview=PipeView())
    _run("1L", "bfs", obs=obs)  # one little core running scalar code
    assert any(r.unit.startswith("lit") for r in obs.pipeview._done)


def test_kanata_lane_split(pipeview_run, tmp_path):
    """One self-contained Kanata log per unit group — big/little core
    pipelines, engine µops, VMU line traffic — each carrying its own
    header and parsing standalone, with no record lost or duplicated
    across the lane files."""
    obs, _ = pipeview_run
    pv = obs.pipeview
    from repro.obs.pipeview import lane_of
    assert pv.lanes() == ["cores", "engine", "mem"]
    lanes = pv.write_kanata_lanes(str(tmp_path / "saxpy"))
    assert set(lanes) == {"cores", "engine", "mem"}
    by_lane = {}
    for lane, path in lanes.items():
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        opened, retired = parse_kanata(lines)  # asserts the 0004 header
        by_lane[lane] = len(opened)
    assert by_lane["cores"] and by_lane["engine"] and by_lane["mem"]
    assert sum(by_lane.values()) == len(pv)
    # the lane partition matches the per-record grouping
    recs = pv._export_records()
    for lane in by_lane:
        assert by_lane[lane] == sum(1 for r in recs if lane_of(r.unit) == lane)
