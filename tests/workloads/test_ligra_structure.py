"""Per-app structural tests for the Ligra generators."""

import pytest

from repro.isa.scalar import Op, OP_IS_BRANCH
import repro.workloads as W


def ops_of(trace):
    from collections import Counter
    return Counter(i.op for i in trace)


def test_bfs_phases_are_bfs_levels():
    w = W.get_workload("bfs", "tiny")
    phases = w._compute_phases()
    g = w.params["g"]
    seen = set()
    for lvl in phases:
        # no vertex appears in two levels
        assert not (set(lvl) & seen)
        seen |= set(lvl)
    assert 0 in phases[0]


def test_bfs_claims_each_vertex_once():
    w = W.get_workload("bfs", "tiny")
    tr = w.scalar_trace()
    amos = [i for i in tr if i.op == Op.AMOADD]
    claimed = {i.addr for i in amos}
    assert len(amos) == len(claimed)  # one claim per vertex
    g = w.params["g"]
    assert len(claimed) == g.n - 1  # everyone but the root


def test_pagerank_touches_every_vertex_each_iteration():
    w = W.get_workload("pagerank", "tiny")
    phases = w._compute_phases()
    g = w.params["g"]
    for lvl in phases:
        assert len(lvl) == g.n


def test_cc_active_set_shrinks():
    w = W.get_workload("cc", "tiny")
    phases = w._compute_phases()
    assert len(phases[0]) >= len(phases[-1])


def test_kcore_peels_every_vertex_at_most_once():
    w = W.get_workload("kcore", "tiny")
    phases = w._compute_phases()
    peeled = [v for lvl in phases for v in lvl]
    assert len(peeled) == len(set(peeled))


def test_mis_rounds_terminate():
    w = W.get_workload("mis", "tiny")
    phases = w._compute_phases()
    assert 1 <= len(phases) <= 12


def test_bc_has_forward_and_backward_kinds():
    w = W.get_workload("bc", "tiny")
    phases = w._compute_phases()
    kinds = {w._phase_kind(i) for i in range(len(phases))}
    assert kinds == {0, 1}


def test_radii_uses_64bit_ops():
    w = W.get_workload("radii", "tiny")
    tr = w.scalar_trace()
    ops = ops_of(tr)
    assert ops[Op.LD] > 0 and ops[Op.SD] > 0
    assert ops[Op.OR] > 0


def test_bf_relaxations_store_distances():
    w = W.get_workload("bf", "tiny")
    tr = w.scalar_trace()
    ops = ops_of(tr)
    assert ops[Op.SLT] > 0
    assert ops[Op.SW] > 0


@pytest.mark.parametrize("name", W.TASK_PARALLEL)
def test_edge_scans_fetch_csr_arrays(name):
    w = W.get_workload(name, "tiny")
    tr = w.scalar_trace()
    off, edge = w.params["off"], w.params["edge"]
    addrs = {i.addr for i in tr if i.addr is not None}
    assert any(off <= a < off + 4 * (w.params["g"].n + 1) for a in addrs)
    assert any(edge <= a < edge + 4 * w.params["g"].m for a in addrs)


@pytest.mark.parametrize("name", W.TASK_PARALLEL)
def test_branchy_irregular_code(name):
    # the defining property the paper leans on: graph apps are branch-heavy
    w = W.get_workload(name, "tiny")
    tr = w.scalar_trace()
    n_br = sum(1 for i in tr if OP_IS_BRANCH[i.op])
    assert n_br / len(tr) > 0.10, name
