"""Tests for workload trace generators (Tables IV & V)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.isa.vector import VOP_IS_MEM
import repro.workloads as W


ALL_VECTORIZABLE = W.KERNELS + W.DATA_PARALLEL


def test_registry_matches_paper_tables():
    # Table IV: 3 kernels + 8 Ligra apps; Table V: 8 data-parallel apps
    assert len(W.KERNELS) == 3
    assert len(W.DATA_PARALLEL) == 8
    assert len(W.TASK_PARALLEL) == 8
    assert set(W.KERNELS) == {"vvadd", "mmult", "saxpy"}
    assert "sw" in W.DATA_PARALLEL and "blackscholes" in W.DATA_PARALLEL
    assert {"bfs", "bc", "pagerank", "cc"} <= set(W.TASK_PARALLEL)


def test_unknown_workload_rejected():
    with pytest.raises(WorkloadError):
        W.get_workload("doom")
    with pytest.raises(WorkloadError):
        W.get_workload("vvadd", scale="huge")


@pytest.mark.parametrize("name", ALL_VECTORIZABLE)
def test_scalar_and_vector_traces_nonempty(name):
    w = W.get_workload(name, "tiny")
    st_ = w.scalar_trace()
    vt = w.vector_trace(512)
    assert len(st_) > 0
    assert len(vt) > 0
    ns, nv = vt.counts()
    assert nv > 0, "vector trace must contain vector instructions"
    _, nv_s = st_.counts()
    assert nv_s == 0, "scalar trace must be purely scalar"


@pytest.mark.parametrize("name", ALL_VECTORIZABLE)
def test_vector_trace_much_shorter_than_scalar(name):
    # the entire point of vectorization: fewer dynamic instructions
    w = W.get_workload(name, "tiny")
    assert len(w.vector_trace(512)) < len(w.scalar_trace()) / 2


@pytest.mark.parametrize("name", ALL_VECTORIZABLE)
def test_vlen_agnostic_element_coverage(name):
    # RVV strip-mining covers the same elements for every VLEN
    w128 = W.get_workload(name, "tiny").vector_trace(128)
    w512 = W.get_workload(name, "tiny").vector_trace(512)
    w2048 = W.get_workload(name, "tiny").vector_trace(2048)

    def store_bytes(tr):
        touched = set()
        for i in tr:
            if i.is_vector and VOP_IS_MEM[i.op] and i.op.name.startswith("VS"):
                for a in i.element_addrs():
                    touched.update(range(a, a + i.ew))
        return touched

    assert store_bytes(w128) == store_bytes(w512) == store_bytes(w2048)


@pytest.mark.parametrize("name", ALL_VECTORIZABLE)
def test_task_program_variants(name):
    w = W.get_workload(name, "tiny")
    tp = w.task_program(vector_vlen=128, n_chunks=4)
    assert tp.total_tasks >= 1
    for t in tp.all_tasks():
        assert "scalar" in t.traces
        assert "vector" in t.traces


def test_task_chunks_cover_all_elements():
    w = W.get_workload("vvadd", "tiny")
    tp = w.task_program(n_chunks=4)
    p = w.params
    stores = set()
    for t in tp.all_tasks():
        for i in t.traces["scalar"]:
            if i.addr is not None and i.op.name.startswith("S"):
                stores.add(i.addr)
    expected = {p["c"] + 4 * j for j in range(p["n"])}
    assert stores == expected


def test_sw_has_scalar_epilogue():
    w = W.get_workload("sw", "tiny")
    vt = w.vector_trace(512)
    ns, nv = vt.counts()
    # Table V: ~69% vectorized -> a substantial scalar tail must exist
    assert ns > 0.15 * len(vt)


def test_deterministic_generation():
    a = W.get_workload("kmeans", "tiny", seed=3).vector_trace(512)
    b = W.get_workload("kmeans", "tiny", seed=3).vector_trace(512)
    assert len(a) == len(b)
    assert all(x.pc == y.pc and x.op == y.op for x, y in zip(a, b))


@pytest.mark.parametrize("name", W.TASK_PARALLEL)
def test_ligra_apps_produce_phases(name):
    w = W.get_workload(name, "tiny")
    tp = w.task_program()
    assert len(tp.phases) >= 1
    assert tp.total_tasks >= 1
    st_ = w.scalar_trace()
    assert len(st_) > 100


@pytest.mark.parametrize("name", W.TASK_PARALLEL)
def test_ligra_scalar_and_task_work_equivalent(name):
    # the same per-vertex work regardless of decomposition (within the
    # serial/runtime bookkeeping differences)
    w1 = W.get_workload(name, "tiny")
    scalar_len = len(w1.scalar_trace())
    w2 = W.get_workload(name, "tiny")
    tp = w2.task_program()
    task_len = sum(len(t.traces["scalar"]) for t in tp.all_tasks())
    serial_len = sum(len(p.serial) for p in tp.phases if p.serial)
    assert abs((task_len + serial_len) - scalar_len) <= 0.05 * scalar_len


def test_graph_generator_properties():
    g = W.make_rmat(256, avg_degree=8, seed=1)
    assert g.n == 256
    assert g.m > 0
    # symmetric
    for v in range(g.n):
        for w_ in g.neighbors(v):
            assert v in g.neighbors(w_)
    # no isolated vertices
    assert all(g.degree(v) > 0 for v in range(g.n))
    # power-law-ish: max degree well above average
    degs = [g.degree(v) for v in range(g.n)]
    assert max(degs) > 3 * (sum(degs) / len(degs))


def test_graph_generator_rejects_non_pow2():
    with pytest.raises(ValueError):
        W.make_rmat(100)


def test_bfs_levels_partition_reachable_vertices():
    g = W.make_rmat(128, seed=5)
    levels = W.bfs_levels(g)
    seen = [v for lvl in levels for v in lvl]
    assert len(seen) == len(set(seen))
    assert set(seen) == set(range(g.n))  # fixup edges connect everything


@given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=32))
@settings(max_examples=50)
def test_chunk_ranges_property(n, k):
    chunks = W.chunk_ranges(n, k)
    assert chunks[0][0] == 0
    assert chunks[-1][1] == n
    for (a, b), (c, d) in zip(chunks, chunks[1:]):
        assert b == c
    assert all(b > a for a, b in chunks)


def test_scales_increase_work():
    for name in ("vvadd", "backprop", "bfs"):
        tiny = len(W.get_workload(name, "tiny").scalar_trace())
        small = len(W.get_workload(name, "small").scalar_trace())
        assert small > tiny
