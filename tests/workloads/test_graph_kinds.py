"""Tests for graph-topology options and the uniform generator."""

import pytest

from repro.workloads import get_workload
from repro.workloads.graphs import bfs_levels, make_rmat, make_uniform


def test_uniform_graph_properties():
    g = make_uniform(256, avg_degree=8, seed=3)
    assert g.n == 256
    for v in range(g.n):
        for w in g.neighbors(v):
            assert v in g.neighbors(w)
    assert all(g.degree(v) > 0 for v in range(g.n))


def test_uniform_flatter_than_rmat():
    r = make_rmat(256, avg_degree=8, seed=3)
    u = make_uniform(256, avg_degree=8, seed=3)
    assert max(r.degree(v) for v in range(r.n)) > \
        2 * max(u.degree(v) for v in range(u.n))


def test_uniform_rejects_non_pow2():
    with pytest.raises(ValueError):
        make_uniform(100)


def test_ligra_app_accepts_graph_kind():
    a = get_workload("bfs", "tiny", graph_kind="uniform")
    b = get_workload("bfs", "tiny")  # rmat default
    assert a.params["g"].m != b.params["g"].m or \
        a.params["g"].edges != b.params["g"].edges


def test_bfs_covers_uniform_graph():
    g = make_uniform(128, seed=9)
    levels = bfs_levels(g)
    assert {v for lvl in levels for v in lvl} == set(range(g.n))


def test_traces_generate_for_both_kinds():
    for kind in ("rmat", "uniform"):
        w = get_workload("pagerank", "tiny", graph_kind=kind)
        assert len(w.scalar_trace()) > 100
        assert w.task_program().total_tasks >= 1
