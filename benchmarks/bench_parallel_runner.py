"""Benchmark: serial vs parallel Fig. 4 sweep, cold and warm cache.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_parallel_runner.py --jobs 4
    PYTHONPATH=src python benchmarks/bench_parallel_runner.py --scale small

Measures three configurations of the same sweep on a private cache dir:

* cold cache, serial ``run_pair`` loop (the pre-parallel harness),
* cold cache, ``ParallelRunner`` with ``--jobs`` workers,
* warm cache (pure lookups — the resumable-reproduction path).

On a >= 4-core machine the parallel cold run should beat serial by roughly
min(jobs, cores)/1 minus pool overhead, and the warm run should be ~free.
"""

from __future__ import annotations

import argparse
import shutil
import tempfile
import time

from repro.experiments.cache import ResultCache, set_cache
from repro.experiments.figures import fig4_requests
from repro.experiments.parallel import ParallelRunner, format_summary
from repro.experiments.runner import run_pair
from repro.workloads import KERNELS, TASK_PARALLEL

SYSTEMS = ["1L", "1b", "1bIV", "1b-4L", "1bIV-4L", "1bDV", "1b-4VL"]


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", default="tiny", choices=("tiny", "small"))
    ap.add_argument("--jobs", type=int, default=4)
    ap.add_argument("--full", action="store_true",
                    help="all fig4 workloads (default: kernels + 2 Ligra apps)")
    args = ap.parse_args(argv)

    workloads = None if args.full else KERNELS + TASK_PARALLEL[:2]
    requests = fig4_requests(args.scale, SYSTEMS, workloads)
    print(f"fig4 sweep: {len(requests)} (system, workload) runs "
          f"at scale={args.scale}\n")

    tmp = tempfile.mkdtemp(prefix="bvl-bench-cache-")
    try:
        # ---- cold, serial --------------------------------------------------
        set_cache(ResultCache(cache_dir=tmp))
        t0 = time.perf_counter()
        for r in requests:
            run_pair(r.system, r.workload, r.scale, **r.overrides)
        t_serial = time.perf_counter() - t0
        print(f"cold serial          {t_serial:8.2f}s")

        # ---- cold, parallel ------------------------------------------------
        cache = set_cache(ResultCache(cache_dir=tmp))
        cache.clear()
        runner = ParallelRunner(jobs=args.jobs)
        t0 = time.perf_counter()
        runner.run(requests)
        t_par = time.perf_counter() - t0
        print(f"cold --jobs {args.jobs:<2d}       {t_par:8.2f}s   "
              f"({t_serial / t_par:.2f}x vs serial)")
        print(f"  {format_summary(runner.summary())}")

        # ---- warm ----------------------------------------------------------
        set_cache(ResultCache(cache_dir=tmp))  # fresh memory, warm disk
        t0 = time.perf_counter()
        runner = ParallelRunner(jobs=args.jobs)
        runner.run(requests)
        t_warm = time.perf_counter() - t0
        print(f"warm cache           {t_warm:8.2f}s   "
              f"({t_serial / max(t_warm, 1e-9):.0f}x vs cold serial)")
        assert runner.summary()["simulated"] == 0, "warm run re-simulated!"

        if t_par < t_serial:
            print("\nPASS: parallel cold run beat the serial runner")
            return 0
        import os
        cores = os.cpu_count() or 1
        if cores < 2:
            print(f"\nSKIP: only {cores} core available; the parallel win "
                  f"needs >= 2 (warm-cache result still checked above)")
            return 0
        print(f"\nWARN: parallel run was not faster on {cores} cores "
              f"(machine busy?)")
        return 1
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
