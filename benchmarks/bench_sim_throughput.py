"""Benchmark + CI guard: quiescence skipping must pay for itself.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --record baseline.json
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --check \
        benchmarks/sim_throughput_baseline.json

Each (workload, system) pair runs three interleaved arms of the same
simulation:

* **event**  — the per-unit event-driven core (``loop="event"``, the
  default);
* **legacy** — the probe-every-span quiescence scheduler
  (``loop="legacy"``);
* **dense**  — ``run(..., skip=False)``, grinding through every tick.

All arms produce bit-identical stats apart from the ``sim.ticks_*``
executed/skipped split, so wall-time ratios against the dense arm
isolate each scheduler. The workload grid covers the three regimes the
schedulers were built for:

* ``saxpy``         — a dense vector kernel (little idle time; the guard
  checks skipping never *costs* throughput here);
* ``switch_thrash`` — many short vector regions, each paying the §III-B
  mode-switch penalty: long fully-idle spans on the VLITTLE system;
* ``dram_chain``    — a dependent scalar miss chain with a cache-hostile
  stride: the core blocks on DRAM for ~100-tick stretches.

Absolute wall time is machine-dependent, so ``--check`` guards the
machine-relative **dense/skip speedup** per loop: each loop's geometric
mean over the whole grid must not fall more than ``--tolerance``
(default 10%) below its recorded baseline. A pre-event-core baseline
(single recorded geomean, no per-loop split) gates *both* loops against
the same figure — the re-baseline flow requires both to clear the old
bar first. Individual pairs are reported but not gated — single
(workload, system) speedups swing ±15% run to run, while the geomean is
stable to a couple of percent.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

from repro.experiments.runner import _program_for
from repro.soc import System, preset
from repro.workloads import get_workload

from bench_pipeview_overhead import emit_bench_json

SYSTEMS = ("1b-4VL", "1bIV-4L", "1bDV")
SCALE = "small"
DOMAINS = ("big", "little", "mem")
LOOPS = ("event", "legacy")

#: ``switch_thrash`` / ``dram_chain`` now live in the workload registry
#: (``repro.workloads.synthetic``) with larger per-scale defaults sized
#: for phase detection; the benchmark pins the parameters its recorded
#: baselines were measured with so old and new baselines stay comparable
#: (the pinned traces are bit-identical to the builders this file used
#: to inline).
_SYNTH_PARAMS = {
    "switch_thrash": dict(regions=80, scalar=10, nvec=16),
    "dram_chain": dict(n=1000, stride=8192),
}


def _program(workload, cfg):
    params = _SYNTH_PARAMS.get(workload, {})
    return _program_for(cfg, get_workload(workload, SCALE, **params))


WORKLOADS = ("saxpy", "switch_thrash", "dram_chain")

#: measurement arms: two schedulers plus the dense reference
_ARMS = ("event", "legacy", "dense")


def _one_run(workload, system_name, arm):
    cfg = preset(system_name)
    program = _program(workload, cfg)
    system = System(cfg)
    t0 = time.perf_counter()
    if arm == "dense":
        result = system.run(program, skip=False)
    else:
        result = system.run(program, loop=arm)
    wall = time.perf_counter() - t0
    ticks = sum(result.stats[f"sim.ticks_{d}"] for d in DOMAINS)
    skipped = sum(result.stats[f"sim.ticks_skipped_{d}"] for d in DOMAINS)
    return wall, ticks, skipped


def measure(repeats):
    """Best-of-``repeats`` wall time per (workload, system, arm),
    interleaved so frequency scaling and cache warmth hit all arms
    equally."""
    out = {}
    for workload in WORKLOADS:
        for system_name in SYSTEMS:
            _one_run(workload, system_name, "event")  # warm traces/caches
            best = {arm: float("inf") for arm in _ARMS}
            split = {}
            for _ in range(repeats):
                for arm in _ARMS:
                    wall, t, s = _one_run(workload, system_name, arm)
                    best[arm] = min(best[arm], wall)
                    if arm != "dense":
                        split[arm] = (t, s)
            ticks, skipped = split["event"]
            total = ticks + skipped
            m = {
                "dense_wall_s": best["dense"],
                "ticks_total": total,
            }
            for loop in LOOPS:
                t, s = split[loop]
                m[f"{loop}_wall_s"] = best[loop]
                m[f"{loop}_speedup"] = best["dense"] / best[loop]
                m[f"{loop}_skipped_frac"] = s / (t + s) if (t + s) else 0.0
            m["event_vs_legacy"] = best["legacy"] / best["event"]
            out[(workload, system_name)] = m
    return out


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--record", metavar="PATH",
                    help="write the measured speedups as the new baseline")
    ap.add_argument("--check", metavar="PATH",
                    help="fail (exit 1) if a loop's geomean speedup falls "
                         "below this baseline by more than --tolerance")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative speedup drop (default 0.10)")
    ap.add_argument("--bench-json", metavar="PATH",
                    help="merge the measurements into a bigvlittle-bench-v1 "
                         "results file (CI artifact)")
    args = ap.parse_args(argv)

    results = measure(args.repeats)
    print(f"run-loop throughput, best of {args.repeats} per arm:")
    print(f"  {'workload':14s} {'system':9s} {'event':>9s} {'legacy':>9s} "
          f"{'dense':>9s} {'ev-spd':>7s} {'lg-spd':>7s} {'ev/lg':>6s}")
    for (workload, system_name), m in results.items():
        print(f"  {workload:14s} {system_name:9s} "
              f"{m['event_wall_s'] * 1000:7.1f}ms "
              f"{m['legacy_wall_s'] * 1000:7.1f}ms "
              f"{m['dense_wall_s'] * 1000:7.1f}ms "
              f"{m['event_speedup']:6.2f}x {m['legacy_speedup']:6.2f}x "
              f"{m['event_vs_legacy']:5.2f}x")

    speedups = {loop: {f"{w}:{s}": round(m[f"{loop}_speedup"], 4)
                       for (w, s), m in results.items()}
                for loop in LOOPS}
    geomeans = {loop: _geomean(list(speedups[loop].values()))
                for loop in LOOPS}
    synth = [m["event_vs_legacy"] for (w, _), m in results.items()
             if w in ("switch_thrash", "dram_chain")]
    print(f"  geomean speedup: event {geomeans['event']:.3f}x, "
          f"legacy {geomeans['legacy']:.3f}x")
    print(f"  geomean event-vs-legacy on synthetics: "
          f"{_geomean(synth):.3f}x")
    if args.record:
        payload = {"scale": SCALE, "repeats": args.repeats,
                   "loops": {loop: {
                       "geomean_speedup": round(geomeans[loop], 4),
                       "speedups": speedups[loop]} for loop in LOOPS}}
        with open(args.record, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"recorded baseline to {args.record}")
    if args.bench_json:
        for (workload, system_name), m in results.items():
            emit_bench_json(
                args.bench_json, f"sim_throughput:{workload}:{system_name}",
                {"event_wall_s": round(m["event_wall_s"], 5),
                 "legacy_wall_s": round(m["legacy_wall_s"], 5),
                 "dense_wall_s": round(m["dense_wall_s"], 5),
                 "event_speedup": round(m["event_speedup"], 4),
                 "legacy_speedup": round(m["legacy_speedup"], 4),
                 "event_vs_legacy": round(m["event_vs_legacy"], 4),
                 "event_skipped_frac": round(m["event_skipped_frac"], 4),
                 "legacy_skipped_frac": round(m["legacy_skipped_frac"], 4)},
                {"system": system_name, "workload": workload,
                 "scale": SCALE, "repeats": args.repeats})
        print(f"merged results into {args.bench_json}")

    rc = 0
    if args.check:
        with open(args.check) as f:
            base = json.load(f)
        if "loops" in base:
            bases = {loop: base["loops"][loop]["geomean_speedup"]
                     for loop in LOOPS}
        else:
            # pre-event-core baseline: one legacy figure gates both loops
            bases = {loop: base["geomean_speedup"] for loop in LOOPS}
        for loop in LOOPS:
            limit = bases[loop] * (1.0 - args.tolerance)
            ok = geomeans[loop] >= limit
            print(f"  guard [{loop}] geomean speedup: "
                  f"{geomeans[loop]:.3f}x vs limit {limit:.3f}x "
                  f"(baseline {bases[loop]:.3f}x -{args.tolerance:.0%}) "
                  f"-> {'OK' if ok else 'FAIL'}")
            if not ok:
                rc = 1
        if rc:
            print("sim-throughput regression: a scheduler lost ground "
                  "against the forced-off loop; check for new "
                  "per-iteration work ahead of the probe, next_work_ps "
                  "hooks returning 0 too eagerly, or skip spans being "
                  "clamped harder than before.")
    return rc


if __name__ == "__main__":
    sys.exit(main())
