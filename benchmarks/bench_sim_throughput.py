"""Benchmark + CI guard: quiescence skipping must pay for itself.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --record baseline.json
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --check \
        benchmarks/sim_throughput_baseline.json

Each (workload, system) pair runs two interleaved arms of the same
simulation:

* **on**  — the quiescence-skipping scheduler enabled (the default);
* **off** — ``run(..., skip=False)``, grinding through every tick.

Both arms produce bit-identical stats apart from the ``sim.ticks_*``
executed/skipped split, so their wall-time ratio isolates the scheduler.
The workload grid covers the three regimes the scheduler was built for:

* ``saxpy``         — a dense vector kernel (little idle time; the guard
  checks skipping never *costs* throughput here);
* ``switch_thrash`` — many short vector regions, each paying the §III-B
  mode-switch penalty: long fully-idle spans on the VLITTLE system;
* ``dram_chain``    — a dependent scalar miss chain with a cache-hostile
  stride: the core blocks on DRAM for ~100-tick stretches.

Absolute wall time is machine-dependent, so ``--check`` guards the
machine-relative **off/on speedup**: the geometric mean over the whole
grid must not fall more than ``--tolerance`` (default 10%) below its
recorded baseline. Individual pairs are reported but not gated — single
(workload, system) speedups swing ±15% run to run, while the geomean is
stable to a couple of percent.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

from repro.experiments.runner import _program_for
from repro.soc import System, preset
from repro.workloads import get_workload

from bench_pipeview_overhead import emit_bench_json

SYSTEMS = ("1b-4VL", "1bIV-4L", "1bDV")
SCALE = "small"
DOMAINS = ("big", "little", "mem")

#: ``switch_thrash`` / ``dram_chain`` now live in the workload registry
#: (``repro.workloads.synthetic``) with larger per-scale defaults sized
#: for phase detection; the benchmark pins the parameters its recorded
#: baselines were measured with so old and new baselines stay comparable
#: (the pinned traces are bit-identical to the builders this file used
#: to inline).
_SYNTH_PARAMS = {
    "switch_thrash": dict(regions=80, scalar=10, nvec=16),
    "dram_chain": dict(n=1000, stride=8192),
}


def _program(workload, cfg):
    params = _SYNTH_PARAMS.get(workload, {})
    return _program_for(cfg, get_workload(workload, SCALE, **params))


WORKLOADS = ("saxpy", "switch_thrash", "dram_chain")


def _one_run(workload, system_name, skip):
    cfg = preset(system_name)
    program = _program(workload, cfg)
    system = System(cfg)
    t0 = time.perf_counter()
    result = system.run(program, skip=skip)
    wall = time.perf_counter() - t0
    ticks = sum(result.stats[f"sim.ticks_{d}"] for d in DOMAINS)
    skipped = sum(result.stats[f"sim.ticks_skipped_{d}"] for d in DOMAINS)
    return wall, ticks, skipped


def measure(repeats):
    """Best-of-``repeats`` wall time per (workload, system, arm),
    interleaved so frequency scaling and cache warmth hit both arms
    equally."""
    out = {}
    for workload in WORKLOADS:
        for system_name in SYSTEMS:
            _one_run(workload, system_name, True)  # warm traces and caches
            best = {True: float("inf"), False: float("inf")}
            ticks = skipped = 0
            for _ in range(repeats):
                for skip in (True, False):
                    wall, t, s = _one_run(workload, system_name, skip)
                    best[skip] = min(best[skip], wall)
                    if skip:
                        ticks, skipped = t, s
            total = ticks + skipped
            out[(workload, system_name)] = {
                "on_wall_s": best[True],
                "off_wall_s": best[False],
                "speedup": best[False] / best[True],
                "on_ticks_per_s": total / best[True],
                "off_ticks_per_s": total / best[False],
                "skipped_frac": skipped / total if total else 0.0,
            }
    return out


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--record", metavar="PATH",
                    help="write the measured speedups as the new baseline")
    ap.add_argument("--check", metavar="PATH",
                    help="fail (exit 1) if a speedup falls below this "
                         "baseline by more than --tolerance")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative speedup drop (default 0.10)")
    ap.add_argument("--bench-json", metavar="PATH",
                    help="merge the measurements into a bigvlittle-bench-v1 "
                         "results file (CI artifact)")
    args = ap.parse_args(argv)

    results = measure(args.repeats)
    print(f"quiescence skipping, best of {args.repeats} per arm:")
    print(f"  {'workload':14s} {'system':9s} {'on':>9s} {'off':>9s} "
          f"{'speedup':>8s} {'skipped':>8s} {'Mticks/s':>9s}")
    for (workload, system_name), m in results.items():
        print(f"  {workload:14s} {system_name:9s} "
              f"{m['on_wall_s'] * 1000:7.1f}ms {m['off_wall_s'] * 1000:7.1f}ms "
              f"{m['speedup']:7.2f}x {m['skipped_frac']:7.1%} "
              f"{m['on_ticks_per_s'] / 1e6:9.2f}")

    speedups = {f"{w}:{s}": round(m["speedup"], 4)
                for (w, s), m in results.items()}
    geomean = math.exp(sum(math.log(v) for v in speedups.values())
                       / len(speedups))
    print(f"  geomean speedup: {geomean:.3f}x")
    if args.record:
        payload = {"scale": SCALE, "repeats": args.repeats,
                   "geomean_speedup": round(geomean, 4),
                   "speedups": speedups}
        with open(args.record, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"recorded baseline to {args.record}")
    if args.bench_json:
        for (workload, system_name), m in results.items():
            emit_bench_json(
                args.bench_json, f"sim_throughput:{workload}:{system_name}",
                {"on_wall_s": round(m["on_wall_s"], 5),
                 "off_wall_s": round(m["off_wall_s"], 5),
                 "speedup": round(m["speedup"], 4),
                 "skipped_frac": round(m["skipped_frac"], 4),
                 "on_ticks_per_s": round(m["on_ticks_per_s"], 1),
                 "off_ticks_per_s": round(m["off_ticks_per_s"], 1)},
                {"system": system_name, "workload": workload,
                 "scale": SCALE, "repeats": args.repeats})
        print(f"merged results into {args.bench_json}")

    rc = 0
    if args.check:
        with open(args.check) as f:
            base = json.load(f)
        baseline = base["geomean_speedup"]
        limit = baseline * (1.0 - args.tolerance)
        verdict = "OK" if geomean >= limit else "FAIL"
        print(f"  guard geomean speedup: {geomean:.3f}x vs limit "
              f"{limit:.3f}x (baseline {baseline:.3f}x "
              f"-{args.tolerance:.0%}) -> {verdict}")
        if geomean < limit:
            rc = 1
        if rc:
            print("sim-throughput regression: the quiescence-skipping "
                  "scheduler lost ground against the forced-off loop; "
                  "check for new per-iteration work ahead of the probe, "
                  "next_work_ps hooks returning 0 too eagerly, or skip "
                  "spans being clamped harder than before.")
    return rc


if __name__ == "__main__":
    sys.exit(main())
