"""Table VI: post-synthesis area of a 4L cluster vs a 4VL engine.

Paper claims: ~2.4% overhead with the simple little core, ~2.1% with Ariane,
<5% either way; the Ara-referenced decoupled engine is about the size of a
four-Ariane cluster with its L1 caches.
"""

from repro.experiments import tables


def test_table6(once):
    data = once(tables.table6_data)
    assert 0.015 < data["simple"]["overhead"] < 0.035
    assert 0.015 < data["ariane"]["overhead"] < 0.03
    assert data["ariane"]["overhead"] < data["simple"]["overhead"]
    est = data["1bDV_estimate"]
    ratio = est["ara_engine_kge"] / est["4xariane_cluster_kge"]
    assert 0.8 < ratio < 1.25
    for core in ("simple", "ariane"):
        print(core, data[core]["4L_kum2"], "->", data[core]["4VL_kum2"],
              f"(+{data[core]['overhead'] * 100:.1f}%)")
