"""Figure 7: little-core execution-time breakdown in 1b-4VL across the
compute-pipeline configurations 1c / 1c+sw / 2c+sw.

Paper claims: packed-element support (sw) cuts executed µops and overall
time; the second chime (2c) hides long-latency stalls (raw_llfu) in
compute-intensive applications.
"""

from repro.experiments import figures
from repro.utils import geomean


def test_fig7(once):
    data = once(figures.fig7, scale="tiny")

    # packed elements speed up every 32-bit workload
    speedup_sw = geomean([d["1c"]["cycles"] / d["1c+sw"]["cycles"] for d in data.values()])
    assert speedup_sw > 1.15

    # the second chime helps overall
    speedup_2c = geomean([d["1c+sw"]["cycles"] / d["2c+sw"]["cycles"] for d in data.values()])
    assert speedup_2c > 1.05

    # and specifically reduces long-latency-unit stalls in FP-heavy apps
    for w in ("blackscholes", "jacobi2d", "kmeans"):
        d = data[w]
        frac1 = d["1c+sw"]["raw_llfu"] / max(d["1c+sw"]["cycles"], 1)
        frac2 = d["2c+sw"]["raw_llfu"] / max(d["2c+sw"]["cycles"], 1)
        assert frac2 < frac1, w

    # exact accounting: categories sum to lane-cycles (4 lanes)
    cats = ["busy", "simd", "raw_mem", "raw_llfu", "struct", "xelem", "misc"]
    for w, cfgs in data.items():
        for cname, bd in cfgs.items():
            assert sum(bd[c] for c in cats) <= 4 * bd["cycles"]

    figures.print_fig7(data)
