"""Benchmark + CI guard: pipeview/sampler must be free when not requested.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_pipeview_overhead.py
    PYTHONPATH=src python benchmarks/bench_pipeview_overhead.py --record baseline.json
    PYTHONPATH=src python benchmarks/bench_pipeview_overhead.py --check \
        benchmarks/pipeview_overhead_baseline.json

Three arms of the same (system, workload) pair, interleaved in one
process:

* **off**     — no Observation at all;
* **shallow** — ``Observation()`` with neither pipeview nor sampler: every
  per-instruction lifecycle hook and the run loop's sampling compare must
  reduce to a single ``is None`` / integer check;
* **deep**    — ``Observation(pipeview=PipeView(), sampler=IntervalSampler())``
  doing full instruction-grain tracking and interval sampling.

Absolute wall time is machine-dependent, so the guard checks the
machine-relative **off/deep** and **shallow/deep** ratios. If lifecycle
tracking work leaks onto the off or shallow paths (allocating records,
formatting labels, sampling when no sampler is attached), those arms creep
toward the deep time and the ratios rise; ``--check`` fails when either
exceeds its recorded baseline by more than ``--tolerance`` (default 5%).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments.runner import _program_for
from repro.obs import IntervalSampler, Observation, PipeView
from repro.soc import System, preset
from repro.workloads import get_workload

SYSTEM = "1b-4VL"
WORKLOAD = "saxpy"
SCALE = "small"
SAMPLER_INTERVAL = 100


def _make_obs(arm):
    if arm == "off":
        return None
    if arm == "shallow":
        return Observation()
    return Observation(pipeview=PipeView(),
                       sampler=IntervalSampler(SAMPLER_INTERVAL))


def _one_run(arm):
    cfg = preset(SYSTEM)
    program = _program_for(cfg, get_workload(WORKLOAD, SCALE))
    system = System(cfg)
    obs = _make_obs(arm)
    t0 = time.perf_counter()
    system.run(program, obs=obs)
    return time.perf_counter() - t0


def measure(repeats):
    """Best-of-``repeats`` wall time per arm, interleaved so frequency
    scaling and cache warmth hit all arms equally."""
    best = {"off": float("inf"), "shallow": float("inf"), "deep": float("inf")}
    for arm in best:
        _one_run(arm)  # warm imports, traces, and branch predictors
    for _ in range(repeats):
        for arm in best:
            best[arm] = min(best[arm], _one_run(arm))
    return best


def emit_bench_json(path, name, metrics, meta):
    """Merge one result into a ``bigvlittle-bench-v1`` results file."""
    doc = {"schema": "bigvlittle-bench-v1", "results": []}
    if os.path.exists(path):
        with open(path) as f:
            loaded = json.load(f)
        if loaded.get("schema") == "bigvlittle-bench-v1":
            doc = loaded
    doc["results"] = [r for r in doc.get("results", []) if r.get("name") != name]
    doc["results"].append({"name": name, "metrics": metrics, "meta": meta})
    doc["results"].sort(key=lambda r: r["name"])
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--record", metavar="PATH",
                    help="write the measured ratios as the new baseline")
    ap.add_argument("--check", metavar="PATH",
                    help="fail (exit 1) if a ratio exceeds this baseline "
                         "by more than --tolerance")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed relative ratio increase (default 0.05)")
    ap.add_argument("--bench-json", metavar="PATH",
                    help="merge the measurements into a bigvlittle-bench-v1 "
                         "results file (CI artifact)")
    args = ap.parse_args(argv)

    best = measure(args.repeats)
    off, shallow, deep = best["off"], best["shallow"], best["deep"]
    ratios = {"off_deep_ratio": round(off / deep, 4),
              "shallow_deep_ratio": round(shallow / deep, 4)}
    print(f"{WORKLOAD}@{SCALE} on {SYSTEM}, best of {args.repeats}:")
    print(f"  obs off          : {off * 1000:8.1f} ms")
    print(f"  obs shallow      : {shallow * 1000:8.1f} ms  (no pipeview/sampler)")
    print(f"  obs deep         : {deep * 1000:8.1f} ms  (pipeview + sampler)")
    print(f"  off/deep         : {ratios['off_deep_ratio']:.3f}")
    print(f"  shallow/deep     : {ratios['shallow_deep_ratio']:.3f}")

    if args.record:
        payload = {"system": SYSTEM, "workload": WORKLOAD, "scale": SCALE,
                   "repeats": args.repeats, **ratios}
        with open(args.record, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"recorded baseline to {args.record}")
    if args.bench_json:
        emit_bench_json(
            args.bench_json, "pipeview_overhead",
            {"off_ms": round(off * 1000, 3),
             "shallow_ms": round(shallow * 1000, 3),
             "deep_ms": round(deep * 1000, 3), **ratios},
            {"system": SYSTEM, "workload": WORKLOAD, "scale": SCALE,
             "repeats": args.repeats})
        print(f"merged results into {args.bench_json}")

    rc = 0
    if args.check:
        with open(args.check) as f:
            base = json.load(f)
        for key in ("off_deep_ratio", "shallow_deep_ratio"):
            limit = base[key] * (1.0 + args.tolerance)
            got = ratios[key]
            verdict = "OK" if got <= limit else "FAIL"
            print(f"  guard {key:<18}: {got:.3f} vs limit {limit:.3f} "
                  f"(baseline {base[key]:.3f} +{args.tolerance:.0%}) -> {verdict}")
            if got > limit:
                rc = 1
        if rc:
            print("pipeview/sampler-off overhead regression: an arm without "
                  "instruction-grain tracking slowed down relative to the "
                  "deep arm; check for lifecycle work not gated behind "
                  "`if self._pv is not None` / the sampler's next_sample "
                  "compare.")
    return rc


if __name__ == "__main__":
    sys.exit(main())
