"""Design-space ablations (DESIGN.md §7 extras, beyond the paper's figures)."""

from repro.experiments import ablations


def test_cluster_scaling(once):
    data = once(ablations.cluster_scaling, workload="saxpy", scale="tiny")
    # more lanes -> longer hardware vector
    assert data[2]["vlen_bits"] < data[4]["vlen_bits"] < data[8]["vlen_bits"]
    # and more performance, with sub-linear returns (shared VMIU/VLU rate)
    assert data[4]["speedup"] > data[2]["speedup"]
    assert data[8]["speedup"] > data[4]["speedup"]
    scaling_4_to_8 = data[8]["speedup"] / data[4]["speedup"]
    assert scaling_4_to_8 < 2.0
    print("cluster scaling:", {n: round(d["speedup"], 2) for n, d in data.items()})


def test_switch_penalty(once):
    data = once(ablations.switch_penalty, workload="saxpy")
    # penalty hurts a small region far more than a large one
    small_hit = data["tiny"][8000]
    large_hit = data["small"][8000]
    assert small_hit > large_hit
    assert data["tiny"][0] == 1.0
    for scale in data:
        row = [data[scale][p] for p in sorted(data[scale])]
        assert row == sorted(row)  # monotone in penalty
    print("switch penalty slowdown:", data)


def test_vxu_topology(once):
    data = once(ablations.vxu_topology, workload="kmeans", scale="tiny")
    # kmeans has few cross-element ops; topology should barely matter —
    # the paper's justification for the cheap ring
    assert max(data.values()) < 1.15
    print("vxu topology (relative time):", data)


def test_coalesce_width(once):
    data = once(ablations.coalesce_width, workload="particlefilter", scale="tiny")
    # performance is monotone non-decreasing in the window
    widths = sorted(data)
    perf = [data[w] for w in widths]
    for a, b in zip(perf, perf[1:]):
        assert b >= a - 0.02
    print("coalesce width (relative perf):", data)


def test_dram_bandwidth(once):
    data = once(ablations.dram_bandwidth, workload="vvadd", scale="tiny")
    # with starved DRAM both designs hit the same wall: the advantage shrinks
    assert data[16] < data[1] + 0.05
    print("4VL advantage vs DRAM interval:", data)


def test_region_granularity(once):
    data = once(ablations.region_granularity, scale="tiny", elems=1024)
    # the paper's coarse-grained-switching argument: fine regions are
    # strictly worse, and per-region cost compounds
    ns = sorted(data)
    slow = [data[n] for n in ns]
    assert slow == sorted(slow)
    assert data[ns[-1]] > 2.0  # 8 regions >> 1 region
    assert data[1] == 1.0
    print("region granularity slowdown:", data)
