"""Figure 9: 1bIV-4L and 1b-4VL performance across the (big, little) DVFS
grid.

Paper claims: boosting the big core barely helps 1b-4VL (the big core is only
a control core for the VLITTLE engine) — except for ``sw``, which is only 69%
vectorized; boosting the little cluster helps 1b-4VL strongly.
"""

from repro.experiments import figures

# a representative subset keeps the 16-point grid affordable per app
APPS = ("saxpy", "blackscholes", "sw")


def test_fig9(once):
    data = once(figures.fig9, scale="tiny", workloads=APPS)

    for w in APPS:
        vl = data[w]["1b-4VL"]
        # little-cluster boost at fixed big frequency helps substantially
        gain_little = vl[("b1", "l3")] / vl[("b1", "l0")]
        assert gain_little > 1.25, (w, gain_little)

    # big-core boost sensitivity at fixed little frequency:
    def big_gain(w):
        vl = data[w]["1b-4VL"]
        return vl[("b3", "l1")] / vl[("b0", "l1")]

    # sw (31% scalar) must respond to the big core more than the
    # fully-vectorized apps do
    assert big_gain("sw") > big_gain("saxpy")
    assert big_gain("sw") > big_gain("blackscholes")
    assert big_gain("saxpy") < 1.25  # nearly insensitive

    # 1bIV-4L runs real work on the big core, so it responds to big boosts
    for w in APPS:
        iv = data[w]["1bIV-4L"]
        assert iv[("b3", "l1")] > iv[("b0", "l1")]

    figures.print_fig9(data)
