"""Shared benchmark configuration.

Each benchmark regenerates one paper table/figure at ``tiny`` scale (the CLI
regenerates them at full size: ``bigvlittle fig4 --scale small``). Simulations
are deterministic, so a single pedantic round is measured.
"""

import pytest

from repro.experiments.cache import ResultCache, set_cache


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Benchmarks time cold simulations: keep them off the persistent
    on-disk cache (a warm ``results/cache/`` would time JSON reads)."""
    yield set_cache(ResultCache(
        cache_dir=str(tmp_path_factory.mktemp("bench-cache"))))


@pytest.fixture
def once(benchmark):
    """Run a figure generator exactly once under pytest-benchmark."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
