"""Shared benchmark configuration.

Each benchmark regenerates one paper table/figure at ``tiny`` scale (the CLI
regenerates them at full size: ``bigvlittle fig4 --scale small``). Simulations
are deterministic, so a single pedantic round is measured.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a figure generator exactly once under pytest-benchmark."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
