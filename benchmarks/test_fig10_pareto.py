"""Figure 10: 1b-4VL execution time vs estimated power across DVFS points.

Paper claim: the Pareto-optimal points boost the little cluster and slow the
big core — the power saved on the (mostly idle) big core buys little-cluster
frequency that the vector engine actually uses.
"""

from repro.experiments import figures

APPS = ("saxpy", "blackscholes", "pathfinder")


def test_fig10(once):
    data = once(figures.fig10, scale="tiny", workloads=APPS)
    for w in APPS:
        pareto = data[w]["pareto"]
        assert len(pareto) >= 2
        tags = [t for _, _, t in pareto]
        # Pareto points prefer a slow big core: none should boost the big
        # core to b3 while leaving the little cluster slow
        assert all(not (b == "b3" and l in ("l0", "l1")) for b, l in tags), tags
        # the fastest Pareto point runs the little cluster at full speed
        fastest = min(pareto, key=lambda p: p[0])
        assert fastest[2][1] == "l3"
    figures.print_fig10(data)
