"""Figure 8: 1b-4VL performance vs VMU load/store data-queue depth.

Paper claims: memory-intensive workloads (vvadd, saxpy, pathfinder,
backprop) improve significantly with deeper queues and then saturate;
performance is monotonically non-decreasing in depth.
"""

from repro.experiments import figures


def test_fig8(once):
    data = once(figures.fig8, scale="tiny")
    depths = sorted(next(iter(data.values())))

    for w, row in data.items():
        perf = [row[d] for d in depths]
        # monotone within measurement jitter
        for a, b in zip(perf, perf[1:]):
            assert b >= a - 0.03, (w, perf)
        assert abs(row[depths[-1]] - 1.0) < 1e-9  # normalized to deepest

    # at least some memory-bound workloads lose >10% at the shallowest depth
    losers = [w for w, row in data.items() if row[depths[0]] < 0.9]
    assert "pathfinder" in losers or "backprop" in losers
    assert len(losers) >= 2

    figures.print_fig8(data)
