"""Benchmark + CI guard: host profiling must stay cheap enough to trust.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_hostprof_overhead.py
    PYTHONPATH=src python benchmarks/bench_hostprof_overhead.py --record baseline.json
    PYTHONPATH=src python benchmarks/bench_hostprof_overhead.py --check \
        benchmarks/hostprof_overhead_baseline.json

A profiler that distorts what it measures is worse than none: the whole
point of ``bigvlittle hostprof`` is to decide what to vectorize next, so
the sampled mode's own cost must stay in the noise. Three arms of the
same (system, workload) pair, interleaved in one process:

* **off**     — no HostScope attached (the production path);
* **full**    — ``HostScope(stride=1)``: every dispatch timed (exact
  attribution, reported for information);
* **sampled** — ``HostScope(stride=STRIDE)``: the low-overhead mode CI
  and long sweeps should use.

Absolute run time is machine-dependent, so the guard is two-fold: the
measured **sampled/off ratio** must not exceed the recorded baseline by
more than ``--tolerance`` (default 5%), and the *baseline itself* — the
quiet-run consensus estimate of the profiler's true cost — must stay
under ``--max-overhead`` (default 5%, the acceptance bar). The absolute
budget is checked against the committed baseline rather than the live
measurement because a single CI run's ratio jitters by several percent
on a shared machine; a real regression still trips the relative check
(e.g. doubling a 3% overhead lands well past baseline + 5%).

Two choices keep the guard honest on noisy shared machines: arms are
measured with ``time.process_time`` (CPU time — immune to the container
scheduler preempting the process mid-run, which inflates wall time by
double-digit percents here), and each arm's estimate is the **minimum**
over interleaved repeats, the standard noise-floor estimator for
benchmark timing.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.runner import _program_for
from repro.obs import HostScope
from repro.soc import System, preset
from repro.workloads import get_workload

SYSTEM = "1b-4VL"
WORKLOAD = "saxpy"
SCALE = "small"
STRIDE = 16


def _one_run(hostscope):
    cfg = preset(SYSTEM)
    program = _program_for(cfg, get_workload(WORKLOAD, SCALE))
    system = System(cfg)
    t0 = time.process_time()
    system.run(program, hostscope=hostscope)
    return time.process_time() - t0


def _make(arm):
    if arm == "off":
        return None
    return HostScope(stride=1 if arm == "full" else STRIDE)


def measure(repeats):
    """Best-of-``repeats`` CPU time per arm, interleaved so frequency
    scaling and cache warmth hit all arms equally."""
    best = {"off": float("inf"), "full": float("inf"),
            "sampled": float("inf")}
    for arm in best:
        _one_run(_make(arm))  # warm imports, traces, branch predictors
    for _ in range(repeats):
        for arm in best:
            best[arm] = min(best[arm], _one_run(_make(arm)))
    return best


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeats", type=int, default=15)
    ap.add_argument("--record", metavar="PATH",
                    help="write the measured sampled/off ratio as the new "
                         "baseline")
    ap.add_argument("--check", metavar="PATH",
                    help="fail (exit 1) if sampled/off exceeds this baseline "
                         "by more than --tolerance, or the baseline itself "
                         "exceeds --max-overhead")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed relative ratio increase (default 0.05)")
    ap.add_argument("--max-overhead", type=float, default=0.05,
                    help="absolute budget for the *recorded* sampled-mode "
                         "overhead (default 0.05 = 5%%)")
    ap.add_argument("--bench-json", metavar="PATH",
                    help="merge the measurements into a bigvlittle-bench-v1 "
                         "results file (CI artifact)")
    args = ap.parse_args(argv)

    best = measure(args.repeats)
    off, full, sampled = best["off"], best["full"], best["sampled"]
    ratio = sampled / off
    print(f"{WORKLOAD}@{SCALE} on {SYSTEM}, best of {args.repeats} "
          f"(sampling stride {STRIDE}):")
    print(f"  hostprof off     : {off * 1000:8.1f} ms")
    print(f"  hostprof stride 1: {full * 1000:8.1f} ms "
          f"({(full / off - 1) * 100:+.1f}%)")
    print(f"  hostprof sampled : {sampled * 1000:8.1f} ms "
          f"({(ratio - 1) * 100:+.1f}%)")

    if args.record:
        payload = {"system": SYSTEM, "workload": WORKLOAD, "scale": SCALE,
                   "stride": STRIDE, "sampled_off_ratio": round(ratio, 4),
                   "repeats": args.repeats}
        with open(args.record, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"recorded baseline to {args.record}")
    if args.bench_json:
        from bench_pipeview_overhead import emit_bench_json

        emit_bench_json(
            args.bench_json, "hostprof_overhead",
            {"off_ms": round(off * 1000, 3),
             "full_ms": round(full * 1000, 3),
             "sampled_ms": round(sampled * 1000, 3),
             "sampled_off_ratio": round(ratio, 4),
             "full_off_ratio": round(full / off, 4)},
            {"system": SYSTEM, "workload": WORKLOAD, "scale": SCALE,
             "stride": STRIDE, "repeats": args.repeats})
        print(f"merged results into {args.bench_json}")
    if args.check:
        with open(args.check) as f:
            base = json.load(f)["sampled_off_ratio"]
        cap = 1.0 + args.max_overhead
        limit = base * (1.0 + args.tolerance)
        ok = base <= cap and ratio <= limit
        print(f"  guard   : ratio {ratio:.3f} vs limit {limit:.3f} "
              f"(baseline {base:.3f} +{args.tolerance:.0%}; baseline budget "
              f"{cap:.2f}) -> {'OK' if ok else 'FAIL'}")
        if base > cap:
            print("hostprof overhead budget exceeded: the committed baseline "
                  "records a sampled-mode cost above --max-overhead; the "
                  "profiler must get cheaper before re-recording.")
            return 1
        if ratio > limit:
            print("hostprof overhead regression: the sampled profiler now "
                  "costs more than its budget; check for un-strided work in "
                  "HostScope.wrap or new always-on bookkeeping.")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
