"""Figure 5: instruction-fetch requests to memory, normalized to 1bDV.

Paper claim: 1bIV-4L performs significantly more fetches than the
long-vector systems (short VL + duplicated fetch on four scalar cores +
runtime overhead); 1b-4VL is close to 1bDV.
"""

from repro.experiments import figures
from repro.utils import geomean


def test_fig5(once):
    data = once(figures.fig5, scale="tiny")
    for w, row in data.items():
        assert row["1bIV-4L"] > row["1b-4VL"], w
        assert row["1bIV-4L"] > 2.0, f"{w}: expected >>1bDV fetches"
    gm = geomean([row["1bIV-4L"] for row in data.values()])
    assert gm > 5.0
    figures.print_normalized(data, "ifetch / 1bDV")
