"""Figure 11: time/power points of all designs with the Pareto frontier.

Paper claims: in the low-power region (<1 W) 1b-4VL sits on the Pareto
frontier; 1bDV's power-hungry engine keeps it out of the low-power region
entirely, though it reaches the highest performance at high power.
"""

from repro.experiments import figures
from repro.power import system_power_w

APPS = ("saxpy", "blackscholes")


def test_fig11(once):
    data = once(figures.fig11, scale="tiny", workloads=APPS)
    for w in APPS:
        pareto = data[w]["pareto"]
        systems_on_front = {t[0] for _, _, t in pareto}
        # big.VLITTLE appears on the frontier
        assert "1b-4VL" in systems_on_front, (w, systems_on_front)
        # the low-power (<1 W) part of the frontier contains no 1bDV point
        low_power = [t for _, p, t in pareto if p < 1.0]
        assert low_power, "some design must be feasible under 1 W"
        assert all(t[0] != "1bDV" for t in low_power)
        # 1bDV simply cannot run below ~1.3 W
        assert min(system_power_w("1bDV", b) for b in ("b0", "b1", "b2", "b3")) > 1.0
    figures.print_fig11(data)
