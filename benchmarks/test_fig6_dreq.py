"""Figure 6: data requests to memory, normalized to 1bDV.

Paper claim: wide vector line requests mean 1b-4VL and 1bDV issue far fewer
data requests than 1bIV-4L's mix of short-vector and scalar accesses.
"""

from repro.experiments import figures
from repro.utils import geomean


def test_fig6(once):
    data = once(figures.fig6, scale="tiny")
    for w, row in data.items():
        assert row["1bIV-4L"] > row["1b-4VL"], w
    gm = geomean([row["1bIV-4L"] / row["1b-4VL"] for row in data.values()])
    assert gm > 2.0
    figures.print_normalized(data, "data reqs / 1bDV")
