"""Figure 4: speedup over 1L for all systems, task- and data-parallel.

Paper claims checked (shape, not absolute numbers):
* task-parallel: 1b-4VL == 1bIV-4L exactly; both ~1.7x faster than 1bDV;
* data-parallel: 1b-4VL ~1.6x over 1bIV-4L; ~half of 1bDV.
"""

from repro.experiments import figures
from repro.utils import geomean
from repro.workloads import DATA_PARALLEL, KERNELS, TASK_PARALLEL


def _fig4_mixed():
    # data-parallel apps at tiny scale; task-parallel apps need real graphs
    # (the tiny 128-vertex rMAT leaves too little parallel work for 5 cores)
    dp = figures.fig4(scale="tiny", workloads=KERNELS + DATA_PARALLEL)
    tp = figures.fig4(scale="small", workloads=list(TASK_PARALLEL))
    dp["speedups"].update(tp["speedups"])
    dp["summary"].update(tp["summary"])
    return dp


def test_fig4(once):
    data = once(_fig4_mixed)
    sp = data["speedups"]

    # every system at least matches a single little core on every workload
    for w, row in sp.items():
        assert row["1L"] == 1.0

    # --- task-parallel claims (paper §V-A) ---
    tp_vl = [sp[w]["1b-4VL"] for w in TASK_PARALLEL]
    tp_iv = [sp[w]["1bIV-4L"] for w in TASK_PARALLEL]
    tp_dv = [sp[w]["1bDV"] for w in TASK_PARALLEL]
    for a, b in zip(tp_vl, tp_iv):
        assert a == b, "scalar-mode big.VLITTLE must equal big.LITTLE"
    ratio_tp = geomean(tp_vl) / geomean(tp_dv)
    assert 1.3 < ratio_tp < 2.6, f"task-parallel 4VL/DV ratio {ratio_tp} (paper: 1.7)"

    # --- data-parallel claims ---
    dp = KERNELS + DATA_PARALLEL
    ratio_dp = geomean([sp[w]["1b-4VL"] / sp[w]["1bIV-4L"] for w in dp])
    assert 1.0 < ratio_dp < 2.2, f"data-parallel 4VL/IV-4L ratio {ratio_dp} (paper: 1.6)"
    ratio_dv = geomean([sp[w]["1bDV"] / sp[w]["1b-4VL"] for w in dp])
    assert 1.3 < ratio_dv < 3.0, f"DV/4VL ratio {ratio_dv} (paper: ~2)"

    figures.print_fig4(data)
