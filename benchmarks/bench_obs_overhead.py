"""Benchmark + CI guard: the disabled observability path must stay free.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --record baseline.json
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --check \
        benchmarks/obs_overhead_baseline.json

Every hook site in the simulator is gated on a single ``obs is None``
check, so a run *without* an Observation attached should cost within
noise of the pre-instrumentation simulator. Absolute wall time is
machine-dependent, so the guard checks a machine-relative quantity
instead: the **off/on ratio** — how long an unobserved run takes relative
to a fully observed run of the same (system, workload) pair, measured
back-to-back in one process. If someone later does observability work on
the disabled path (allocates events, formats strings, updates metrics),
the off time creeps toward the on time and the ratio rises; ``--check``
fails when it exceeds the recorded baseline by more than ``--tolerance``
(default 5%).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.runner import _program_for
from repro.obs import Observation
from repro.soc import System, preset
from repro.workloads import get_workload

SYSTEM = "1b-4VL"
WORKLOAD = "saxpy"
SCALE = "small"


def _one_run(obs):
    cfg = preset(SYSTEM)
    program = _program_for(cfg, get_workload(WORKLOAD, SCALE))
    system = System(cfg)
    t0 = time.perf_counter()
    system.run(program, obs=obs)
    return time.perf_counter() - t0


def measure(repeats):
    """Best-of-``repeats`` wall time for obs-off and obs-on, interleaved
    so frequency scaling and cache warmth hit both arms equally."""
    _one_run(None)  # warm imports, traces, and branch predictors
    _one_run(Observation())
    off = on = float("inf")
    for _ in range(repeats):
        off = min(off, _one_run(None))
        on = min(on, _one_run(Observation()))
    return off, on


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--record", metavar="PATH",
                    help="write the measured off/on ratio as the new baseline")
    ap.add_argument("--check", metavar="PATH",
                    help="fail (exit 1) if off/on exceeds this baseline "
                         "by more than --tolerance")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed relative ratio increase (default 0.05)")
    ap.add_argument("--bench-json", metavar="PATH",
                    help="merge the measurements into a bigvlittle-bench-v1 "
                         "results file (CI artifact)")
    args = ap.parse_args(argv)

    off, on = measure(args.repeats)
    ratio = off / on
    print(f"{WORKLOAD}@{SCALE} on {SYSTEM}, best of {args.repeats}:")
    print(f"  obs off : {off * 1000:8.1f} ms")
    print(f"  obs on  : {on * 1000:8.1f} ms")
    print(f"  off/on  : {ratio:.3f}  (observing costs {(on / off - 1) * 100:+.1f}%)")

    if args.record:
        payload = {"system": SYSTEM, "workload": WORKLOAD, "scale": SCALE,
                   "off_on_ratio": round(ratio, 4), "repeats": args.repeats}
        with open(args.record, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"recorded baseline to {args.record}")
    if args.bench_json:
        from bench_pipeview_overhead import emit_bench_json

        emit_bench_json(
            args.bench_json, "obs_overhead",
            {"off_ms": round(off * 1000, 3), "on_ms": round(on * 1000, 3),
             "off_on_ratio": round(ratio, 4)},
            {"system": SYSTEM, "workload": WORKLOAD, "scale": SCALE,
             "repeats": args.repeats})
        print(f"merged results into {args.bench_json}")
    if args.check:
        with open(args.check) as f:
            base = json.load(f)["off_on_ratio"]
        limit = base * (1.0 + args.tolerance)
        verdict = "OK" if ratio <= limit else "FAIL"
        print(f"  guard   : ratio {ratio:.3f} vs limit {limit:.3f} "
              f"(baseline {base:.3f} +{args.tolerance:.0%}) -> {verdict}")
        if ratio > limit:
            print("disabled-path overhead regression: the obs-off simulator "
                  "slowed down relative to obs-on; check for hook work that "
                  "is not gated behind `if self.obs is not None`.")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
