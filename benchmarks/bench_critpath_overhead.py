"""Benchmark + CI guard: the critpath-off event core must stay free.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_critpath_overhead.py
    PYTHONPATH=src python benchmarks/bench_critpath_overhead.py --record baseline.json
    PYTHONPATH=src python benchmarks/bench_critpath_overhead.py --check \
        benchmarks/critpath_overhead_baseline.json

A :class:`~repro.obs.critpath.CritPath` attaches by *wrapping* each
unit's tick and notify closure at loop setup — the production path with
no CritPath attached must not pay a single extra branch per iteration.
Absolute wall time is machine-dependent, so the guard checks the
machine-relative **off/on ratio** (how long an unattributed run takes
relative to an attributed run of the same pair, interleaved in one
process): if someone later leaks per-tick bookkeeping into the
unattached path, off creeps toward on and the ratio rises past the
recorded baseline. Arms are timed with ``time.process_time`` (CPU time
— immune to container-scheduler preemption) and each arm's estimate is
the minimum over interleaved repeats, the standard noise-floor
estimator.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.runner import _program_for
from repro.obs import CritPath
from repro.soc import System, preset
from repro.workloads import get_workload

SYSTEM = "1b-4VL"
WORKLOAD = "saxpy"
SCALE = "small"


def _one_run(critpath):
    cfg = preset(SYSTEM)
    program = _program_for(cfg, get_workload(WORKLOAD, SCALE))
    system = System(cfg)
    t0 = time.process_time()
    system.run(program, critpath=critpath)
    return time.process_time() - t0


def measure(repeats):
    """Best-of-``repeats`` CPU time for critpath-off and critpath-on,
    interleaved so frequency scaling and cache warmth hit both arms
    equally."""
    _one_run(None)  # warm imports, traces, and branch predictors
    _one_run(CritPath())
    off = on = float("inf")
    for _ in range(repeats):
        off = min(off, _one_run(None))
        on = min(on, _one_run(CritPath()))
    return off, on


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeats", type=int, default=7)
    ap.add_argument("--record", metavar="PATH",
                    help="write the measured off/on ratio as the new baseline")
    ap.add_argument("--check", metavar="PATH",
                    help="fail (exit 1) if off/on exceeds this baseline "
                         "by more than --tolerance")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed relative ratio increase (default 0.05)")
    ap.add_argument("--bench-json", metavar="PATH",
                    help="merge the measurements into a bigvlittle-bench-v1 "
                         "results file (CI artifact)")
    args = ap.parse_args(argv)

    off, on = measure(args.repeats)
    ratio = off / on
    print(f"{WORKLOAD}@{SCALE} on {SYSTEM}, best of {args.repeats}:")
    print(f"  critpath off : {off * 1000:8.1f} ms")
    print(f"  critpath on  : {on * 1000:8.1f} ms")
    print(f"  off/on       : {ratio:.3f}  "
          f"(attribution costs {(on / off - 1) * 100:+.1f}%)")

    if args.record:
        payload = {"system": SYSTEM, "workload": WORKLOAD, "scale": SCALE,
                   "off_on_ratio": round(ratio, 4), "repeats": args.repeats}
        with open(args.record, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"recorded baseline to {args.record}")
    if args.bench_json:
        from bench_pipeview_overhead import emit_bench_json

        emit_bench_json(
            args.bench_json, "critpath_overhead",
            {"off_ms": round(off * 1000, 3), "on_ms": round(on * 1000, 3),
             "off_on_ratio": round(ratio, 4)},
            {"system": SYSTEM, "workload": WORKLOAD, "scale": SCALE,
             "repeats": args.repeats})
        print(f"merged results into {args.bench_json}")
    if args.check:
        with open(args.check) as f:
            base = json.load(f)["off_on_ratio"]
        limit = base * (1.0 + args.tolerance)
        verdict = "OK" if ratio <= limit else "FAIL"
        print(f"  guard   : ratio {ratio:.3f} vs limit {limit:.3f} "
              f"(baseline {base:.3f} +{args.tolerance:.0%}) -> {verdict}")
        if ratio > limit:
            print("critpath-off overhead regression: the unattributed event "
                  "core slowed down relative to critpath-on; check for "
                  "bookkeeping that is not gated behind the one-time "
                  "`critpath is not None` setup in run_event_loop.")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
