#!/usr/bin/env python3
"""Quickstart: simulate one kernel on the paper's systems.

Runs saxpy on a conventional big.LITTLE with an integrated vector unit
(1bIV-4L), on big.VLITTLE (1b-4VL), and on the aggressive decoupled engine
(1bDV), then prints the headline comparison of the paper.

    python examples/quickstart.py [tiny|small|full]
"""

import sys

from repro.experiments import run_pair
from repro.workloads import get_workload


def main():
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    systems = ["1L", "1b", "1bIV", "1b-4L", "1bIV-4L", "1bDV", "1b-4VL"]

    print(f"saxpy @ scale={scale}: a*X + Y over "
          f"{get_workload('saxpy', scale).params['n']} fp32 elements\n")
    base = None
    for s in systems:
        r = run_pair(s, "saxpy", scale)
        base = base or r.stats["time_ps"]
        speedup = base / r.stats["time_ps"]
        print(f"  {s:8s}  {r.cycles:8d} cycles @1GHz   speedup over 1L: {speedup:5.2f}x"
              f"   ifetch={r['fetch_requests']:6d}  data reqs={r['data_requests']:6d}")

    vl = run_pair("1b-4VL", "saxpy", scale)
    iv = run_pair("1bIV-4L", "saxpy", scale)
    dv = run_pair("1bDV", "saxpy", scale)
    print(f"\n  big.VLITTLE vs area-comparable big.LITTLE+IVU: "
          f"{iv.stats['time_ps'] / vl.stats['time_ps']:.2f}x  (paper: ~1.6x geomean)")
    print(f"  decoupled engine vs big.VLITTLE:               "
          f"{vl.stats['time_ps'] / dv.stats['time_ps']:.2f}x  (paper: ~2x)")

    print("\n  1b-4VL lane stall breakdown (Fig. 7 categories):")
    total = sum(vl.stats[f"vlittle.lane_stall.{c}"]
                for c in ("busy", "simd", "raw_mem", "raw_llfu", "struct", "xelem", "misc"))
    for c in ("busy", "simd", "raw_mem", "raw_llfu", "struct", "xelem", "misc"):
        v = vl.stats[f"vlittle.lane_stall.{c}"]
        print(f"    {c:9s} {v / total * 100:5.1f}%")


if __name__ == "__main__":
    main()
