#!/usr/bin/env python3
"""Voltage/frequency design-space exploration (paper §VII, Figs. 9-11).

Sweeps the 4x4 (big, little) DVFS grid for one application on big.VLITTLE,
prints the performance heatmap and the Pareto-optimal operating points, and
contrasts against the decoupled-engine design's power floor.
"""

import sys

from repro.experiments import run_pair
from repro.power import BIG_LEVELS, LITTLE_LEVELS, freqs, pareto_frontier, system_power_w
from repro.soc import preset


def main():
    app = sys.argv[1] if len(sys.argv) > 1 else "blackscholes"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"
    base = run_pair("1L", app, scale).stats["time_ps"]

    print(f"{app}: 1b-4VL speedup over 1L@1GHz across the DVFS grid\n")
    print("          " + "".join(f"{l:>8s}" for l in LITTLE_LEVELS))
    points = []
    for b in BIG_LEVELS:
        row = []
        for l in LITTLE_LEVELS:
            fb, fl = freqs(b, l)
            cfg = preset("1b-4VL").with_freqs(big=fb, little=fl)
            t = run_pair("1b-4VL", app, scale, cfg=cfg).stats["time_ps"]
            row.append(base / t)
            points.append((t, system_power_w("1b-4VL", b, l), (b, l)))
        print(f"  {b:>4s}    " + "".join(f"{v:8.2f}" for v in row))

    print("\nPareto-optimal (time, power) points — slow big + fast little wins:")
    for t, w, (b, l) in pareto_frontier(points):
        fb, fl = freqs(b, l)
        print(f"  big {fb:.1f} GHz / little {fl:.1f} GHz: "
              f"{base / t:5.2f}x at {w:.2f} W")

    dv_min = min(system_power_w("1bDV", b) for b in BIG_LEVELS)
    print(f"\n1bDV power floor: {dv_min:.2f} W — infeasible in the <1 W region "
          "(paper Fig. 11)")


if __name__ == "__main__":
    main()
