#!/usr/bin/env python3
"""On-device graph analytics with the work-stealing runtime (paper §V-A).

Runs the Ligra-style applications on one big core alone (what a 1bDV system
can offer irregular code) and on the big.LITTLE multicore, demonstrating why
the paper argues a big decoupled vector engine is hard to justify in a
mobile SoC: task-parallel workloads simply cannot use it.
"""

import sys

from repro.experiments import run_pair
from repro.utils import geomean
from repro.workloads import TASK_PARALLEL, get_workload


def main():
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    g = get_workload("bfs", scale).params["g"]
    print(f"rMAT graph: {g.n} vertices, {g.m} directed edges (scale={scale})\n")
    print(f"{'app':10s} {'1b (=1bDV)':>12s} {'1b-4L':>10s} {'1b-4VL':>10s} "
          f"{'tasks':>7s} {'steals':>7s}")
    ratios = []
    for app in TASK_PARALLEL:
        r_big = run_pair("1b", app, scale)
        r_bl = run_pair("1b-4L", app, scale)
        r_vl = run_pair("1b-4VL", app, scale)
        ratios.append(r_big.stats["time_ps"] / r_vl.stats["time_ps"])
        print(f"{app:10s} {r_big.cycles:12d} {r_bl.cycles:10d} {r_vl.cycles:10d} "
              f"{r_vl['runtime.tasks']:7d} {r_vl['runtime.steals']:7d}")
    print(f"\nbig.VLITTLE (scalar mode) over a lone big core: "
          f"{geomean(ratios):.2f}x geomean (the paper's 1.7x claim vs 1bDV)")


if __name__ == "__main__":
    main()
