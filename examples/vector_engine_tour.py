#!/usr/bin/env python3
"""A guided tour of the VLITTLE engine's micro-architecture.

Builds a big.VLITTLE system directly from components, runs a small
hand-written RVV program through it, and prints what each part of §III did:
µop broadcast counts, VMU line requests, cross-element (ring) operations,
cache-bank balance, and the per-lane stall breakdown.
"""

from repro.cores import BigCore, LittleCore
from repro.mem import MemorySystem
from repro.trace import TraceBuilder, TraceSource, VectorBuilder
from repro.vector import VLittleEngine


def build():
    ms = MemorySystem(n_big=1, n_little=4)
    littles = [LittleCore(f"lit{i}", ms.little_l1i[i], ms.little_l1d[i])
               for i in range(4)]
    engine = VLittleEngine(littles, chimes=2, packed=True, switch_penalty=500)
    big = BigCore("big0", ms.big_l1i[0], ms.big_l1d[0],
                  vector_mode="decoupled", engine=engine)
    return ms, big, engine


def program(vlen_bits):
    """Dot product with a masked correction pass: touches every µop type."""
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=vlen_bits)
    x, y = 0x100000, 0x110000
    vb.vsetvl(16, ew=4)
    acc = vb.vmv_v_x(tb.li())
    for base, vl in vb.strip_mine(x, 64, ew=4):
        vx = vb.vle(base, vl=vl)
        vy = vb.vle(y + (base - x), vl=vl)
        m = vb.vmflt(vx, vy)                       # mask (v0)
        vx = vb.vmerge(vy, vx, mask=m)             # masked select
        acc = vb.vfmacc(acc, vx, vy)               # FMA accumulate
    red = vb.vfredsum(acc)                         # ring reduction
    result = vb.vmv_x_s(red)                       # scalar response
    tb.addi(result)                                # big core consumes it
    return tb.finish("dot")


def main():
    ms, big, engine = build()
    trace = program(engine.vlen_bits(4))
    big.set_source(TraceSource(trace))
    now = 0
    while not (big.done() and engine.idle()):
        big.set_now_hint(now)
        big.tick(now)
        engine.tick(now)
        ms.tick(now)
        now += 1
        if now > 200_000:
            raise RuntimeError("did not converge")

    print(f"finished in {now} cycles "
          f"(includes the {engine.switch_penalty}-cycle mode switch)\n")
    print(f"vector instructions dispatched : {engine.instrs}")
    print(f"µops issued across 4 lanes     : {sum(l.uops_issued for l in engine.lanes)}")
    print(f"VMU cache-line requests        : {engine.vmu.line_reqs}")
    print(f"VXU ring operations            : {engine.vxu.ops_completed}")
    accesses = [c.l1d.accesses for c in engine.cores]
    print(f"banked L1D slice accesses      : {accesses}  (address-interleaved)")
    print("\nper-lane cycle breakdown (Fig. 7 categories):")
    bd = engine.breakdown()
    total = bd.total()
    for name, v in bd.as_dict().items():
        print(f"  {name:9s} {v / total * 100:5.1f}%")


if __name__ == "__main__":
    main()
