#!/usr/bin/env python3
"""Author a custom vectorized kernel against the public trace-builder API and
run it on every vector system.

The kernel is a fused "normalize and clamp": y[i] = min(max(x[i]*s, lo), hi)
— written once, strip-mined automatically for each engine's hardware vector
length (128-bit IVU, 512-bit VLITTLE, 2048-bit decoupled engine), exactly
like vector-length-agnostic RVV code.
"""

from repro.soc import System, preset
from repro.trace import TraceBuilder, VectorBuilder


def normalize_clamp_trace(vlen_bits, n=2048, x=0x200000, y=0x300000):
    tb = TraceBuilder()
    vb = VectorBuilder(tb, vlen_bits=vlen_bits)
    s_reg, lo_reg, hi_reg = tb.li(), tb.li(), tb.li()
    vb.vsetvl(n, ew=4)
    vs = vb.vmv_v_x(s_reg)
    vlo = vb.vmv_v_x(lo_reg)
    vhi = vb.vmv_v_x(hi_reg)
    for base, vl in vb.strip_mine(x, n, ew=4):
        vx = vb.vle(base, vl=vl)
        vm = vb.vfmul(vx, vs)
        vc = vb.vfmax(vm, vlo)
        vc = vb.vfmin(vc, vhi)
        vb.vse(vc, y + (base - x), vl=vl)
    return tb.finish("normalize_clamp")


def scalar_trace(n=2048, x=0x200000, y=0x300000):
    tb = TraceBuilder()
    s_reg, lo_reg, hi_reg = tb.li(), tb.li(), tb.li()
    with tb.loop(n) as loop:
        for i in loop:
            vx = tb.flw(x + 4 * i)
            vm = tb.fmul(vx, s_reg)
            vc = tb.fmax(vm, lo_reg)
            vc = tb.fmin(vc, hi_reg)
            tb.fsw(vc, y + 4 * i)
    return tb.finish("normalize_clamp_scalar")


def main():
    base = System(preset("1L")).run(scalar_trace()).stats["time_ps"]
    print("normalize_clamp, 2048 fp32 elements\n")
    print(f"  {'1L':8s} scalar reference           speedup 1.00x")
    for name in ("1bIV", "1b-4VL", "1bDV"):
        cfg = preset(name)
        trace = normalize_clamp_trace(cfg.vlen_bits(4))
        ns, nv = trace.counts()
        r = System(cfg).run(trace)
        print(f"  {name:8s} VLEN={cfg.vlen_bits(4):4d}b  {nv:4d} vector instrs  "
              f"speedup {base / r.stats['time_ps']:5.2f}x")


if __name__ == "__main__":
    main()
