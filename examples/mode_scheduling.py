#!/usr/bin/env python3
"""OS scheduling of on-demand vector mode (paper §III-B's open question).

A vector region (saxpy) arrives while the little cores are busy running a
task-parallel job (pagerank). The OS can wait for the cores, preempt them,
or fall back to the big core's integrated vector unit. This example
evaluates all three policies at two vector-region sizes, showing why the
paper advocates coarse-grained switching: small regions cannot amortize the
mode-switch cost and belong on the IVU.
"""

from repro.soc.scheduler import POLICIES, VectorModeScheduler


def show(scale):
    s = VectorModeScheduler("pagerank", "saxpy", scale=scale, arrival_fraction=0.5)
    m = s._measure()
    print(f"vector region size: scale={scale} "
          f"(VLITTLE run = {m['vector_vlittle_ps'] // 1000} cycles)")
    print(f"{'policy':10s} {'vector done (us)':>18s} {'makespan (us)':>15s}")
    for p in POLICIES:
        o = s.evaluate(p)
        print(f"{p:10s} {o.vector_done_ps / 1e6:18.1f} {o.total_ps / 1e6:15.1f}")
    best = s.best("vector_done_ps")
    print(f"-> lowest vector latency: {best.policy}\n")


def main():
    show("tiny")   # small region: the IVU fallback should win
    show("small")  # large region: preempting for the VLITTLE engine wins


if __name__ == "__main__":
    main()
